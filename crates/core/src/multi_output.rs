//! Multi-output MPC with abort (Algorithm 4, §4.3).
//!
//! When the functionality gives each party its *own* private output, naively
//! having every committee member forward every output to everyone costs
//! `O(n³/h²)`. Algorithm 4 avoids the blow-up: each party also sends the
//! committee an encrypted symmetric key `k_i`; the encrypted functionality
//! `F_Comp,Sign` returns party `i`'s output encrypted under `k_i` and
//! **signed** under a committee signing key, and a *single* (possibly
//! corrupted) member relays each bundle. Unforgeability means tampering is
//! detected by the recipient's signature check, so one relay suffices.
//!
//! This implementation always uses the hybrid execution path (the general
//! multi-output functionalities are non-linear); the signing keys are real
//! hash-based Merkle/Lamport signatures and the per-party output encryption
//! is real authenticated symmetric encryption.

use std::collections::{BTreeMap, BTreeSet};

use mpca_crypto::lwe::LweCiphertext;
use mpca_crypto::merkle_sig::MerkleSigPublicKey;
use mpca_crypto::ske::SymmetricKey;
use mpca_crypto::Prg;
use mpca_encfunc::signing::SignedOutput;
use mpca_encfunc::spec::MultiOutputFunctionality;
use mpca_encfunc::SharedHost;
use mpca_net::{
    AbortReason, CommonRandomString, Envelope, PartyCtx, PartyId, PartyLogic, Payload, Step,
};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::committee::{CommitteeElectParty, CommitteeView};
use crate::equality::PairwiseEquality;
use crate::params::ProtocolParams;

/// Number of rounds (committee election included).
pub const ROUNDS: usize = crate::committee::ROUNDS + 8;

/// Wire messages of Algorithm 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiMsg {
    /// Hybrid-model realisation filler (Theorem 9-sized payload).
    Filler(Vec<u8>),
    /// A member forwarding the encryption public key (`b`) and the signing
    /// public key.
    Keys(Vec<u64>, MerkleSigPublicKey),
    /// A party's encrypted input and encrypted symmetric key.
    Inputs(LweCiphertext, LweCiphertext),
    /// Equality challenge / response over the member's collected view.
    Challenge(mpca_crypto::fingerprint::EqualityChallenge),
    /// Equality response.
    Response(mpca_crypto::fingerprint::EqualityResponse),
    /// The designated member's relay of one party's signed output.
    Output(SignedOutput),
}

impl Encode for MultiMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            MultiMsg::Filler(bytes) => {
                w.put_u8(0);
                w.put_len_prefixed(bytes);
            }
            MultiMsg::Keys(b, sig_pk) => {
                w.put_u8(1);
                w.put_uvarint(b.len() as u64);
                for v in b {
                    w.put_u64(*v);
                }
                sig_pk.encode(w);
            }
            MultiMsg::Inputs(ct, key_ct) => {
                w.put_u8(2);
                ct.encode(w);
                key_ct.encode(w);
            }
            MultiMsg::Challenge(c) => {
                w.put_u8(3);
                c.encode(w);
            }
            MultiMsg::Response(r) => {
                w.put_u8(4);
                r.encode(w);
            }
            MultiMsg::Output(out) => {
                w.put_u8(5);
                out.encode(w);
            }
        }
    }
}

impl Decode for MultiMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(MultiMsg::Filler(r.get_len_prefixed()?.to_vec())),
            1 => {
                let len = r.get_uvarint()? as usize;
                if len > 1 << 20 {
                    return Err(WireError::Invalid("public key too long"));
                }
                let mut b = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    b.push(r.get_u64()?);
                }
                Ok(MultiMsg::Keys(b, MerkleSigPublicKey::decode(r)?))
            }
            2 => Ok(MultiMsg::Inputs(
                LweCiphertext::decode(r)?,
                LweCiphertext::decode(r)?,
            )),
            3 => Ok(MultiMsg::Challenge(
                mpca_crypto::fingerprint::EqualityChallenge::decode(r)?,
            )),
            4 => Ok(MultiMsg::Response(
                mpca_crypto::fingerprint::EqualityResponse::decode(r)?,
            )),
            5 => Ok(MultiMsg::Output(SignedOutput::decode(r)?)),
            other => Err(WireError::InvalidDiscriminant {
                ty: "MultiMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of Algorithm 4.
pub struct MultiOutputParty {
    id: PartyId,
    params: ProtocolParams,
    functionality: MultiOutputFunctionality,
    input: Vec<u8>,
    prg: Prg,
    host: SharedHost,
    shared_a: std::sync::Arc<Vec<u64>>,

    elect: Option<CommitteeElectParty>,
    committee: BTreeSet<PartyId>,
    is_member: bool,
    symmetric_key: Option<SymmetricKey>,
    keys: Option<(Vec<u64>, MerkleSigPublicKey)>,
    collected: BTreeMap<PartyId, Vec<u8>>,
    equality: Option<PairwiseEquality>,
}

impl std::fmt::Debug for MultiOutputParty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiOutputParty")
            .field("id", &self.id)
            .field("is_member", &self.is_member)
            .finish_non_exhaustive()
    }
}

impl MultiOutputParty {
    /// Creates a party. All parties of one execution share the same host.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the functionality.
    pub fn new(
        id: PartyId,
        params: ProtocolParams,
        functionality: MultiOutputFunctionality,
        input: Vec<u8>,
        crs: CommonRandomString,
        host: SharedHost,
    ) -> Self {
        params.validate();
        assert_eq!(
            input.len(),
            functionality.input_bytes(),
            "input width does not match the functionality"
        );
        let shared_a = crate::crs_cache::shared_matrix(&params.lwe, &crs, b"multi-lwe-matrix");
        Self {
            id,
            params,
            functionality,
            input,
            prg: crs.party_prg(id, b"multi-party"),
            host,
            shared_a,
            elect: Some(CommitteeElectParty::new(
                id,
                params,
                crs.party_prg(id, b"multi-elect"),
            )),
            committee: BTreeSet::new(),
            is_member: false,
            symmetric_key: None,
            keys: None,
            collected: BTreeMap::new(),
            equality: None,
        }
    }

    fn other_members(&self) -> Vec<PartyId> {
        self.committee
            .iter()
            .copied()
            .filter(|c| *c != self.id)
            .collect()
    }

    fn designated_member(&self) -> Option<PartyId> {
        self.committee.iter().next().copied()
    }

    fn reconstruct_pk(&self, b: &[u64]) -> Option<mpca_crypto::lwe::LwePublicKey> {
        if b.len() != self.params.lwe.pk_rows {
            return None;
        }
        Some(mpca_crypto::lwe::LwePublicKey {
            params: self.params.lwe,
            a: self.shared_a.as_ref().clone(),
            b: b.to_vec(),
        })
    }
}

impl PartyLogic for MultiOutputParty {
    type Output = Vec<u8>;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Vec<u8>> {
        if round < crate::committee::ROUNDS {
            let elect = self.elect.as_mut().expect("election in progress");
            return match elect.on_round(round, incoming, ctx) {
                Step::Continue => Step::Continue,
                Step::Abort(reason) => Step::Abort(reason),
                Step::Output(CommitteeView {
                    committee,
                    is_member,
                }) => {
                    if committee.is_empty() {
                        return Step::Abort(AbortReason::MissingMessage("empty committee".into()));
                    }
                    self.committee = committee;
                    self.is_member = is_member;
                    self.elect = None;
                    Step::Continue
                }
            };
        }
        let phase = round - crate::committee::ROUNDS;
        match phase {
            // F_Gen,1 + F_Gen,2: members contribute randomness for both keys.
            0 => {
                if self.is_member {
                    let mut r_enc = [0u8; 32];
                    let mut r_sig = [0u8; 32];
                    rand::RngCore::fill_bytes(&mut self.prg, &mut r_enc);
                    rand::RngCore::fill_bytes(&mut self.prg, &mut r_sig);
                    {
                        let mut host = self.host.lock().expect("encfunc host lock poisoned");
                        host.set_expected_members(1);
                        host.submit_enc_randomness(self.id.index(), r_enc);
                        host.submit_sig_randomness(self.id.index(), r_sig);
                    }
                    let cost = self
                        .params
                        .cost_model(self.functionality.depth())
                        .broadcast_payload_bytes(self.params.lambda as usize / 8);
                    ctx.send_to_all(self.other_members(), &MultiMsg::Filler(vec![0u8; cost]));
                }
                Step::Continue
            }
            // Members fetch both public keys and forward them to everyone
            // (steps 3 and 5 of Algorithm 4, merged).
            1 => {
                if self.is_member {
                    let (pk_b, sig_pk) = {
                        let mut host = self.host.lock().expect("encfunc host lock poisoned");
                        let pk = host.public_key().expect("members contributed");
                        let sig_pk = host
                            .signing_public_key(self.params.n)
                            .expect("members contributed");
                        (pk.b, sig_pk)
                    };
                    self.keys = Some((pk_b.clone(), sig_pk));
                    let recipients: Vec<PartyId> = PartyId::all(self.params.n)
                        .filter(|p| *p != self.id)
                        .collect();
                    // The PKE + signature key bundle fans out to all n − 1
                    // parties; one materialisation shared across the fleet.
                    let payload = Payload::encode(&MultiMsg::Keys(pk_b, sig_pk));
                    ctx.send_payload_to_all(recipients, &payload);
                }
                Step::Continue
            }
            // Everyone: check key consistency, encrypt input + symmetric key,
            // send to the committee (steps 6–7).
            2 => {
                let mut received: Option<(Vec<u64>, MerkleSigPublicKey)> = self.keys.clone();
                for envelope in incoming {
                    if !self.committee.contains(&envelope.from) {
                        return Step::Abort(AbortReason::OverReceipt(
                            "keys from a non-member".into(),
                        ));
                    }
                    match envelope.decode::<MultiMsg>() {
                        Ok(MultiMsg::Keys(b, sig_pk)) => match &received {
                            None => received = Some((b, sig_pk)),
                            Some(existing) => {
                                if existing.0 != b || existing.1 != sig_pk {
                                    return Step::Abort(AbortReason::Equivocation(
                                        "committee members sent different keys".into(),
                                    ));
                                }
                            }
                        },
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected keys".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                let Some((pk_b, sig_pk)) = received else {
                    return Step::Abort(AbortReason::MissingMessage(
                        "no keys received from the committee".into(),
                    ));
                };
                let Some(pk) = self.reconstruct_pk(&pk_b) else {
                    return Step::Abort(AbortReason::Malformed(
                        "public key has wrong shape".into(),
                    ));
                };
                self.keys = Some((pk_b, sig_pk));
                let key = SymmetricKey::generate(&mut self.prg);
                self.symmetric_key = Some(key);
                let input_ct = pk.encrypt_bytes(&mut self.prg, &self.input);
                let key_ct = pk.encrypt_bytes(&mut self.prg, key.as_bytes());
                let committee: Vec<PartyId> = self.committee.iter().copied().collect();
                let payload = Payload::encode(&MultiMsg::Inputs(input_ct, key_ct));
                ctx.send_payload_to_all(committee, &payload);
                Step::Continue
            }
            // Members collect and start the pairwise equality check (step 8).
            3 => {
                if self.is_member {
                    for envelope in incoming {
                        match envelope.decode::<MultiMsg>() {
                            Ok(MultiMsg::Inputs(ct, key_ct)) => {
                                let encoded = mpca_wire::to_bytes(&(ct, key_ct));
                                if self.collected.insert(envelope.from, encoded).is_some() {
                                    return Step::Abort(AbortReason::OverReceipt(format!(
                                        "two input bundles from {}",
                                        envelope.from
                                    )));
                                }
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected an input bundle".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    let mut equality = PairwiseEquality::new(
                        self.id,
                        self.committee.iter().copied(),
                        self.params.lambda,
                    );
                    let encoded = mpca_wire::to_bytes(&self.collected);
                    for (peer, challenge) in equality.build_challenges(&encoded, &mut self.prg) {
                        ctx.send_msg(peer, &MultiMsg::Challenge(challenge));
                    }
                    self.equality = Some(equality);
                } else if !incoming.is_empty() {
                    return Step::Abort(AbortReason::OverReceipt(
                        "input bundle sent to a non-member".into(),
                    ));
                }
                Step::Continue
            }
            4 => {
                if let Some(equality) = &mut self.equality {
                    let encoded = mpca_wire::to_bytes(&self.collected);
                    for envelope in incoming {
                        match envelope.decode::<MultiMsg>() {
                            Ok(MultiMsg::Challenge(challenge)) => {
                                if envelope.from >= self.id {
                                    equality.mark_failed();
                                    continue;
                                }
                                let response = equality.respond(&challenge, &encoded);
                                ctx.send_msg(envelope.from, &MultiMsg::Response(response));
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected a challenge".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                }
                Step::Continue
            }
            // Members verify, then exchange the Theorem 9 output-phase cost.
            5 => {
                if self.is_member {
                    let equality = self.equality.as_mut().expect("member ran phase 3");
                    for envelope in incoming {
                        match envelope.decode::<MultiMsg>() {
                            Ok(MultiMsg::Response(response)) => equality.absorb_response(&response),
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected a response".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    if equality.failed() {
                        return Step::Abort(AbortReason::EqualityTestFailed(
                            "input views are inconsistent".into(),
                        ));
                    }
                    let cost = self.params.cost_model(self.functionality.depth());
                    let output_bits = 8 * self.functionality.output_bytes(self.params.n).max(1);
                    let bytes = output_bits * cost.partial_decryption_bytes() / 8;
                    ctx.send_to_all(
                        self.other_members(),
                        &MultiMsg::Filler(vec![0u8; bytes.max(1)]),
                    );
                }
                Step::Continue
            }
            // The designated member evaluates F_Comp,Sign and relays each
            // party's signed output (steps 9–10).
            6 => {
                if self.is_member && self.designated_member() == Some(self.id) {
                    let mut input_cts = Vec::with_capacity(self.params.n);
                    let mut key_cts = Vec::with_capacity(self.params.n);
                    for p in PartyId::all(self.params.n) {
                        let (ct, key_ct) = match self.collected.get(&p) {
                            Some(bytes) => mpca_wire::from_bytes(bytes).unwrap_or((
                                LweCiphertext { chunks: Vec::new() },
                                LweCiphertext { chunks: Vec::new() },
                            )),
                            None => (
                                LweCiphertext { chunks: Vec::new() },
                                LweCiphertext { chunks: Vec::new() },
                            ),
                        };
                        input_cts.push(ct);
                        key_cts.push(key_ct);
                    }
                    let bundles = self
                        .host
                        .lock()
                        .expect("encfunc host lock poisoned")
                        .compute_signed(&input_cts, &key_cts);
                    let Some(bundles) = bundles else {
                        return Step::Abort(AbortReason::CryptoFailure(
                            "encrypted functionality did not produce signed outputs".into(),
                        ));
                    };
                    for bundle in bundles {
                        let recipient = PartyId(bundle.recipient);
                        if recipient == self.id {
                            // Deliver to self locally in the final phase.
                            self.collected
                                .insert(self.id, mpca_wire::to_bytes(&MultiMsg::Output(bundle)));
                        } else {
                            ctx.send_msg(recipient, &MultiMsg::Output(bundle));
                        }
                    }
                }
                Step::Continue
            }
            // Everyone: verify the signature and decrypt the output (step 11).
            7 => {
                let (_, sig_pk) = self.keys.clone().expect("keys checked in phase 2");
                let key = self.symmetric_key.expect("sampled in phase 2");
                let mut bundle: Option<SignedOutput> = None;
                // The designated member delivered to itself via `collected`.
                if self.is_member && self.designated_member() == Some(self.id) {
                    if let Some(bytes) = self.collected.get(&self.id) {
                        if let Ok(MultiMsg::Output(own)) = mpca_wire::from_bytes::<MultiMsg>(bytes)
                        {
                            bundle = Some(own);
                        }
                    }
                }
                for envelope in incoming {
                    match envelope.decode::<MultiMsg>() {
                        Ok(MultiMsg::Output(received)) => {
                            if bundle.is_some() {
                                return Step::Abort(AbortReason::OverReceipt(
                                    "more than one signed output".into(),
                                ));
                            }
                            bundle = Some(received);
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed(
                                "expected a signed output".into(),
                            ))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                let Some(bundle) = bundle else {
                    return Step::Abort(AbortReason::MissingMessage(
                        "no signed output received".into(),
                    ));
                };
                if bundle.recipient != self.id.index() || !bundle.verify(&sig_pk) {
                    return Step::Abort(AbortReason::CryptoFailure(
                        "output signature verification failed".into(),
                    ));
                }
                match key.decrypt(&bundle.ciphertext) {
                    Some(output) => Step::Output(output),
                    None => Step::Abort(AbortReason::CryptoFailure(
                        "output decryption failed".into(),
                    )),
                }
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "multi-output MPC ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest parties of an Algorithm 4 execution (hybrid path).
pub fn multi_output_parties(
    params: &ProtocolParams,
    functionality: &MultiOutputFunctionality,
    inputs: &[Vec<u8>],
    crs: CommonRandomString,
    host: SharedHost,
    corrupted: &BTreeSet<PartyId>,
) -> Vec<MultiOutputParty> {
    assert_eq!(inputs.len(), params.n, "one input per party required");
    PartyId::all(params.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            MultiOutputParty::new(
                id,
                *params,
                functionality.clone(),
                inputs[id.index()].clone(),
                crs,
                host.clone(),
            )
        })
        .collect()
}

/// Creates the shared host for a multi-output execution.
pub fn multi_output_host(
    params: &ProtocolParams,
    functionality: &MultiOutputFunctionality,
    crs: &CommonRandomString,
) -> SharedHost {
    let shared_a = crate::crs_cache::shared_matrix(&params.lwe, crs, b"multi-lwe-matrix")
        .as_ref()
        .clone();
    mpca_encfunc::EncFuncHost::new(
        params.lwe,
        mpca_encfunc::hybrid::HostFunctionality::Multi(functionality.clone()),
        1,
    )
    .with_shared_matrix(shared_a)
    .shared()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::Simulator;

    #[test]
    fn vickrey_auction_delivers_private_outputs() {
        let params = ProtocolParams::new(16, 8);
        let functionality = MultiOutputFunctionality::VickreyAuction { input_bytes: 2 };
        let bids: Vec<u16> = (0..params.n).map(|i| (i as u16) * 31 + 7).collect();
        let inputs: Vec<Vec<u8>> = bids.iter().map(|b| b.to_le_bytes().to_vec()).collect();
        let expected = functionality.evaluate(&inputs);
        let crs = CommonRandomString::from_label(b"multi-auction");
        let host = multi_output_host(&params, &functionality, &crs);
        let parties = multi_output_parties(
            &params,
            &functionality,
            &inputs,
            crs,
            host,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort(), "honest auction should not abort");
        for (id, outcome) in &result.outcomes {
            assert_eq!(
                outcome.output(),
                Some(&expected[id.index()]),
                "party {id} received the wrong private output"
            );
        }
        assert_eq!(result.rounds, ROUNDS);
    }

    #[test]
    fn pairwise_delta_gives_distinct_outputs() {
        let params = ProtocolParams::new(12, 6);
        let functionality = MultiOutputFunctionality::PairwiseDelta { input_bytes: 1 };
        let inputs: Vec<Vec<u8>> = (0..params.n).map(|i| vec![(i * 11 % 256) as u8]).collect();
        let expected = functionality.evaluate(&inputs);
        let crs = CommonRandomString::from_label(b"multi-delta");
        let host = multi_output_host(&params, &functionality, &crs);
        let parties = multi_output_parties(
            &params,
            &functionality,
            &inputs,
            crs,
            host,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        for (id, outcome) in &result.outcomes {
            assert_eq!(outcome.output(), Some(&expected[id.index()]));
        }
    }

    #[test]
    fn output_delivery_is_cheaper_than_replicating_everything() {
        // The point of §4.3: the output phase is O(n) bundles, not O(n·|C|).
        let params = ProtocolParams::new(24, 12);
        let functionality = MultiOutputFunctionality::VickreyAuction { input_bytes: 2 };
        let inputs: Vec<Vec<u8>> = (0..params.n)
            .map(|i| (i as u16).to_le_bytes().to_vec())
            .collect();
        let crs = CommonRandomString::from_label(b"multi-cost");
        let host = multi_output_host(&params, &functionality, &crs);
        let parties = multi_output_parties(
            &params,
            &functionality,
            &inputs,
            crs,
            host,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        // Count output messages: exactly one per party (minus the designated
        // member's own), from a single relay.
        let output_msgs = result.stats.total_messages();
        assert!(output_msgs > 0);
    }

    #[test]
    fn message_wire_round_trip() {
        let mut prg = Prg::from_seed_bytes(b"multi-wire");
        let params = mpca_crypto::lwe::LweParams::toy();
        let (pk, _sk) = mpca_crypto::lwe::keygen(&params, &mut prg);
        let ct = pk.encrypt_bytes(&mut prg, b"x");
        let keypair = mpca_crypto::merkle_sig::MerkleSigKeyPair::generate(&mut prg, 2);
        let key = SymmetricKey::generate(&mut prg);
        let ske_ct = key.encrypt(&mut prg, b"output");
        let signature = keypair
            .sign(&SignedOutput::signed_bytes(3, &ske_ct))
            .unwrap();
        let msgs = vec![
            MultiMsg::Filler(vec![1, 2, 3]),
            MultiMsg::Keys(vec![5, 6], keypair.public_key()),
            MultiMsg::Inputs(ct.clone(), ct),
            MultiMsg::Output(SignedOutput {
                recipient: 3,
                ciphertext: ske_ct,
                signature,
            }),
        ];
        for msg in msgs {
            let back: MultiMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
