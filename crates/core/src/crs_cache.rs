//! Process-wide memoization of CRS-derived shared state.
//!
//! Every party of a session regenerates identical CRS-seeded artefacts —
//! most expensively the shared LWE matrix `A` — from a fresh labelled PRG.
//! The matrix is a pure function of (CRS seed, label, parameters), so the
//! per-party regeneration is `O(n · |A|)` PRG work for an `O(|A|)` object:
//! the dominant setup cost of the Theorem 1/4 families in the asymptotic
//! regime. This cache collapses it to one generation per distinct key,
//! shared via `Arc` across parties, sessions and pool workers.
//!
//! Memoization is output-identical by construction: the generating PRG is
//! created fresh per call ([`CommonRandomString::shared_prg`]) and consumed
//! by nothing else, so reusing the result changes no other draw anywhere in
//! the system — trace digests and byte accounting are untouched.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mpca_crypto::lwe::LweParams;
use mpca_encfunc::keygen::shared_matrix_from_crs;
use mpca_net::CommonRandomString;

/// Cache key: CRS seed, derivation label, and the parameters that shape the
/// matrix (entry count and draw modulus).
type Key = ([u8; 32], Vec<u8>, usize, usize, u64);

/// Bound on retained matrices. Campaign sweeps rotate CRS seeds, so the
/// cache is cleared wholesale when full — any eviction beats unbounded
/// growth, and a miss only costs one regeneration.
const MAX_ENTRIES: usize = 64;

static CACHE: OnceLock<Mutex<HashMap<Key, Arc<Vec<u64>>>>> = OnceLock::new();

/// Returns the CRS-derived shared LWE matrix for `(crs, label, params)`,
/// generating it once per distinct key and sharing the buffer thereafter.
///
/// Equivalent to
/// `shared_matrix_from_crs(params, &mut crs.shared_prg(label))` — same
/// entries, same everything — minus the redundant per-party PRG work.
pub fn shared_matrix(params: &LweParams, crs: &CommonRandomString, label: &[u8]) -> Arc<Vec<u64>> {
    let key = (
        crs.seed(),
        label.to_vec(),
        params.pk_rows,
        params.dim,
        params.modulus,
    );
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("crs cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    // Generate outside the lock: matrices are large and concurrent pool
    // workers should not serialise on each other's misses. A racing double
    // generation is benign (identical values; first insert wins).
    let matrix = Arc::new(shared_matrix_from_crs(params, &mut crs.shared_prg(label)));
    let mut guard = cache.lock().expect("crs cache poisoned");
    if guard.len() >= MAX_ENTRIES {
        guard.clear();
    }
    Arc::clone(guard.entry(key).or_insert(matrix))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_matrix_matches_direct_generation_and_is_shared() {
        let params = LweParams::toy();
        let crs = CommonRandomString::from_label(b"cache-test");
        let direct = shared_matrix_from_crs(&params, &mut crs.shared_prg(b"label-a"));
        let cached = shared_matrix(&params, &crs, b"label-a");
        assert_eq!(*cached, direct, "cache must be output-identical");
        let again = shared_matrix(&params, &crs, b"label-a");
        assert!(Arc::ptr_eq(&cached, &again), "second lookup must share");
        let other_label = shared_matrix(&params, &crs, b"label-b");
        assert_ne!(*other_label, direct, "labels must not collide");
        let other_crs = shared_matrix(&params, &CommonRandomString::from_label(b"x"), b"label-a");
        assert_ne!(*other_crs, direct, "seeds must not collide");
    }
}
