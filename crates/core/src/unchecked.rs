//! The **negative control**: a sum protocol with no verification at all.
//!
//! Every protocol in this crate detects equivocation (cross-checking echoes,
//! equality tests, signed key fingerprints) and answers with abort — that is
//! the machinery the paper's *with abort* guarantee is built from. This
//! module implements what a naive engineer would write instead: each party
//! sends its value to everyone, sums whatever arrives, and outputs. No
//! echoes, no equality tests, no over-receipt bound.
//!
//! Under an all-honest or silent execution it is perfectly fine. Under an
//! equivocating adversary two honest parties receive different values and
//! output **different sums** — an agreement violation no honest party
//! notices. The `mpca-scenario` security oracle must flag exactly this, so
//! the negative control doubles as the oracle's own test fixture: a campaign
//! whose rigged scenario is *not* flagged is a broken campaign.

use std::collections::BTreeSet;

use mpca_net::{Envelope, PartyCtx, PartyId, PartyLogic, Step};

/// Number of rounds the protocol takes.
pub const ROUNDS: usize = 2;

/// One party of the verification-free sum.
#[derive(Debug)]
pub struct UncheckedSumParty {
    id: PartyId,
    n: usize,
    value: u64,
}

impl UncheckedSumParty {
    /// Creates a party holding `value`.
    pub fn new(id: PartyId, n: usize, value: u64) -> Self {
        Self { id, n, value }
    }
}

impl PartyLogic for UncheckedSumParty {
    type Output = Vec<u8>;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Vec<u8>> {
        match round {
            0 => {
                ctx.send_to_all(
                    PartyId::all(self.n).filter(|to| *to != self.id),
                    &self.value,
                );
                Step::Continue
            }
            _ => {
                // Deliberately credulous: junk is skipped, duplicates are
                // summed, equivocated values are believed. No abort path.
                let mut sum = self.value;
                for envelope in incoming {
                    if let Ok(v) = envelope.decode::<u64>() {
                        sum = sum.wrapping_add(v);
                    }
                }
                Step::Output(sum.to_le_bytes().to_vec())
            }
        }
    }
}

/// Builds the honest parties of an `n`-party unchecked sum over `values`
/// (one value per party, corrupted parties' logic excluded).
pub fn unchecked_sum_parties(
    values: &[u64],
    corrupted: &BTreeSet<PartyId>,
) -> Vec<UncheckedSumParty> {
    let n = values.len();
    PartyId::all(n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| UncheckedSumParty::new(id, n, values[id.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::{Equivocate, ProxyAdversary, SimConfig, Simulator};

    fn values(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 13 + 1).collect()
    }

    #[test]
    fn all_honest_sum_agrees() {
        let n = 6;
        let vals = values(n);
        let expected: u64 = vals.iter().sum();
        let sim = Simulator::all_honest(n, unchecked_sum_parties(&vals, &BTreeSet::new())).unwrap();
        let result = sim.run().unwrap();
        assert_eq!(
            result.unanimous_output(),
            Some(&expected.to_le_bytes().to_vec())
        );
        assert_eq!(result.rounds, ROUNDS);
    }

    #[test]
    fn equivocation_breaks_agreement_silently() {
        let n = 6;
        let vals = values(n);
        let corrupted: BTreeSet<PartyId> = [PartyId(0)].into();
        let corrupt_logic = vec![UncheckedSumParty::new(PartyId(0), n, vals[0])];
        let adversary = Equivocate::new(
            Box::new(ProxyAdversary::honest(corrupt_logic, n)),
            [PartyId(1)],
        );
        let sim = Simulator::new(
            n,
            unchecked_sum_parties(&vals, &corrupted),
            Box::new(adversary),
            SimConfig::default(),
        )
        .unwrap();
        let result = sim.run().unwrap();
        // The defining failure: nobody aborts, yet outputs disagree.
        assert!(!result.any_abort());
        assert!(result.unanimous_output().is_none());
    }
}
