//! The succinct equality test of Lemma 5 (Algorithm 1, `Equality_λ`) as a
//! two-party protocol, plus the helper used when it is embedded pairwise
//! inside the larger protocols.
//!
//! Two parties holding strings `m₁, m₂ ∈ {0,1}^ℓ` exchange `O(λ + log ℓ)`
//! bits: the initiator samples a random prime `p` and sends
//! `(p, m₁ mod p)`; the responder replies with a single bit. Equal strings
//! always accept; unequal strings are rejected except with probability
//! `≤ ℓ / π(2^bits)`, negligible for the parameter choices used here.

use mpca_crypto::fingerprint::{EqualityChallenge, EqualityResponse};
use mpca_crypto::Prg;
use mpca_net::{AbortReason, Envelope, PartyCtx, PartyId, PartyLogic, Payload, Step};

/// Number of rounds the two-party protocol takes.
pub const ROUNDS: usize = 3;

/// Outcome of the equality protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EqualityOutcome {
    /// The protocol's verdict: `true` iff the strings were judged equal.
    pub equal: bool,
}

/// One endpoint of the two-party `Equality_λ` protocol.
///
/// The party with the lower id initiates (sends the challenge); the other
/// responds. Both output the verdict.
#[derive(Debug)]
pub struct EqualityParty {
    id: PartyId,
    peer: PartyId,
    lambda: u32,
    input: Vec<u8>,
    prg: Prg,
    verdict: Option<bool>,
}

impl EqualityParty {
    /// Creates an endpoint holding `input` and talking to `peer`.
    pub fn new(id: PartyId, peer: PartyId, lambda: u32, input: Vec<u8>, prg: Prg) -> Self {
        assert_ne!(id, peer, "equality test needs two distinct parties");
        Self {
            id,
            peer,
            lambda,
            input,
            prg,
            verdict: None,
        }
    }

    fn is_initiator(&self) -> bool {
        self.id < self.peer
    }
}

impl PartyLogic for EqualityParty {
    type Output = EqualityOutcome;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<EqualityOutcome> {
        match round {
            0 => {
                if self.is_initiator() {
                    let challenge = EqualityChallenge::new(&mut self.prg, self.lambda, &self.input);
                    ctx.send(self.peer, Payload::encode(&challenge));
                }
                Step::Continue
            }
            1 => {
                if self.is_initiator() {
                    return Step::Continue;
                }
                // Responder: exactly one challenge is prescribed.
                let Some(envelope) = incoming.iter().find(|e| e.from == self.peer) else {
                    return Step::Abort(AbortReason::MissingMessage("equality challenge".into()));
                };
                if incoming.iter().filter(|e| e.from == self.peer).count() > 1 {
                    return Step::Abort(AbortReason::OverReceipt(
                        "duplicate equality challenge".into(),
                    ));
                }
                let challenge: EqualityChallenge = match envelope.decode() {
                    Ok(c) => c,
                    Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                };
                let equal = challenge.matches(&self.input);
                ctx.send_msg(self.peer, &EqualityResponse { equal });
                self.verdict = Some(equal);
                Step::Continue
            }
            2 => {
                if self.is_initiator() {
                    let Some(envelope) = incoming.iter().find(|e| e.from == self.peer) else {
                        return Step::Abort(AbortReason::MissingMessage(
                            "equality response".into(),
                        ));
                    };
                    let response: EqualityResponse = match envelope.decode() {
                        Ok(r) => r,
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    };
                    Step::Output(EqualityOutcome {
                        equal: response.equal,
                    })
                } else {
                    Step::Output(EqualityOutcome {
                        equal: self.verdict.expect("set in round 1"),
                    })
                }
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "equality ran past its rounds".into(),
            )),
        }
    }
}

/// Book-keeping helper for running `Equality_λ` pairwise inside a group
/// (committee members in Algorithms 2, 3, 7 and 8).
///
/// Within a group, each unordered pair `{i, j}` runs one instance; the lower
/// id initiates. The helper tracks which responses are still outstanding and
/// whether any test (as initiator or responder) has failed.
#[derive(Debug)]
pub struct PairwiseEquality {
    my_id: PartyId,
    peers: Vec<PartyId>,
    lambda: u32,
    awaiting: usize,
    failed: bool,
}

impl PairwiseEquality {
    /// Creates the helper for `my_id` within `group` (which must contain
    /// `my_id`).
    pub fn new(my_id: PartyId, group: impl IntoIterator<Item = PartyId>, lambda: u32) -> Self {
        let peers: Vec<PartyId> = group.into_iter().filter(|p| *p != my_id).collect();
        Self {
            my_id,
            peers,
            lambda,
            awaiting: 0,
            failed: false,
        }
    }

    /// The peers this party initiates challenges towards (higher ids).
    pub fn initiate_targets(&self) -> Vec<PartyId> {
        self.peers
            .iter()
            .copied()
            .filter(|p| *p > self.my_id)
            .collect()
    }

    /// The peers this party expects challenges from (lower ids).
    pub fn expected_initiators(&self) -> Vec<PartyId> {
        self.peers
            .iter()
            .copied()
            .filter(|p| *p < self.my_id)
            .collect()
    }

    /// Builds the challenges this party must send for its `view` string and
    /// records how many responses it now awaits.
    pub fn build_challenges(
        &mut self,
        view: &[u8],
        prg: &mut Prg,
    ) -> Vec<(PartyId, EqualityChallenge)> {
        let targets = self.initiate_targets();
        self.awaiting = targets.len();
        targets
            .into_iter()
            .map(|peer| (peer, EqualityChallenge::new(prg, self.lambda, view)))
            .collect()
    }

    /// Processes a received challenge against `view`, returning the response
    /// to send back. A mismatch marks the helper as failed.
    pub fn respond(&mut self, challenge: &EqualityChallenge, view: &[u8]) -> EqualityResponse {
        let equal = challenge.matches(view);
        if !equal {
            self.failed = true;
        }
        EqualityResponse { equal }
    }

    /// Processes a received response to one of this party's challenges.
    pub fn absorb_response(&mut self, response: &EqualityResponse) {
        self.awaiting = self.awaiting.saturating_sub(1);
        if !response.equal {
            self.failed = true;
        }
    }

    /// `true` once every expected response has arrived.
    pub fn complete(&self) -> bool {
        self.awaiting == 0
    }

    /// `true` if any test failed (in either role).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Marks the helper as failed (used when a peer's message is missing or
    /// malformed).
    pub fn mark_failed(&mut self) {
        self.failed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::Simulator;

    fn run_pair(a: Vec<u8>, b: Vec<u8>) -> (EqualityOutcome, EqualityOutcome, u64) {
        let parties = vec![
            EqualityParty::new(PartyId(0), PartyId(1), 24, a, Prg::from_seed_bytes(b"eq-0")),
            EqualityParty::new(PartyId(1), PartyId(0), 24, b, Prg::from_seed_bytes(b"eq-1")),
        ];
        let result = Simulator::all_honest(2, parties).unwrap().run().unwrap();
        let bits = result.honest_bits();
        let o0 = *result.outcome_of(PartyId(0)).unwrap().output().unwrap();
        let o1 = *result.outcome_of(PartyId(1)).unwrap().output().unwrap();
        (o0, o1, bits)
    }

    #[test]
    fn equal_strings_accepted() {
        let data = vec![7u8; 10_000];
        let (a, b, _) = run_pair(data.clone(), data);
        assert!(a.equal && b.equal);
    }

    #[test]
    fn unequal_strings_rejected() {
        let mut data2 = vec![7u8; 10_000];
        data2[9_999] ^= 1;
        let (a, b, _) = run_pair(vec![7u8; 10_000], data2);
        assert!(!a.equal && !b.equal);
    }

    #[test]
    fn communication_is_independent_of_string_length() {
        let (_, _, small_bits) = run_pair(vec![1u8; 16], vec![1u8; 16]);
        let (_, _, large_bits) = run_pair(vec![1u8; 1 << 16], vec![1u8; 1 << 16]);
        assert_eq!(small_bits, large_bits);
        // O(λ log n): a couple of hundred bits, not tens of thousands.
        assert!(large_bits < 512, "equality exchanged {large_bits} bits");
    }

    #[test]
    fn pairwise_helper_bookkeeping() {
        let group: Vec<PartyId> = [1usize, 3, 5, 7].into_iter().map(PartyId).collect();
        let mut helper = PairwiseEquality::new(PartyId(3), group.clone(), 16);
        assert_eq!(helper.initiate_targets(), vec![PartyId(5), PartyId(7)]);
        assert_eq!(helper.expected_initiators(), vec![PartyId(1)]);

        let mut prg = Prg::from_seed_bytes(b"pairwise");
        let view = b"committee view".to_vec();
        let challenges = helper.build_challenges(&view, &mut prg);
        assert_eq!(challenges.len(), 2);
        assert!(!helper.complete());

        // Matching responses arrive.
        helper.absorb_response(&EqualityResponse { equal: true });
        helper.absorb_response(&EqualityResponse { equal: true });
        assert!(helper.complete());
        assert!(!helper.failed());

        // A mismatched challenge from a lower-id peer marks failure.
        let bad_challenge = EqualityChallenge::new(&mut prg, 16, b"different view");
        let response = helper.respond(&bad_challenge, &view);
        assert!(!response.equal);
        assert!(helper.failed());
    }

    #[test]
    fn pairwise_helper_detects_failed_response() {
        let mut helper = PairwiseEquality::new(PartyId(0), [PartyId(0), PartyId(1)], 16);
        let mut prg = Prg::from_seed_bytes(b"pairwise2");
        let _ = helper.build_challenges(b"view", &mut prg);
        helper.absorb_response(&EqualityResponse { equal: false });
        assert!(helper.failed());
        assert!(helper.complete());
        helper.mark_failed();
        assert!(helper.failed());
    }
}
