//! The communication–locality tradeoff protocol (Algorithm 8, Theorem 4 /
//! Theorem 19).
//!
//! The committee-based protocol of Algorithm 3 is communication-optimal but
//! every committee member talks to the whole network. Algorithm 8 combines
//! the local committee election of Algorithm 7 with a *sparsified*
//! committee–network interaction: each committee member samples a random
//! cover set `S_c ⊂ [n]` of size `n/√h` and only ever talks to its cover
//! (plus the other members). By the covering claim (Claim 23), every party
//! is covered by at least one honest member w.h.p., so its encrypted input
//! reaches the committee and it receives a correct output copy.
//!
//! Communication `Õ(n³/h^{3/2})`, locality `Õ(n/√h)` (Claims 24–26).

use std::collections::{BTreeMap, BTreeSet};

use mpca_crypto::lwe::LweCiphertext;
use mpca_crypto::threshold::{combine_partials, PartialDecryption, ThresholdDecryptor};
use mpca_crypto::Prg;
use mpca_encfunc::keygen::{combine_contributions, KeygenContribution};
use mpca_encfunc::linear;
use mpca_encfunc::spec::Functionality;
use mpca_encfunc::SharedHost;
use mpca_net::{
    AbortReason, CommonRandomString, Envelope, Milestone, PartyCtx, PartyId, PartyLogic, Payload,
    Step,
};

use crate::equality::PairwiseEquality;
use crate::local_committee::{
    rounds as election_rounds, LocalCommitteeElectParty, LocalCommitteeOutput,
};
use crate::mpc::{encode_ct_view, MpcMsg};
use crate::params::{ExecutionPath, ProtocolParams};

/// Number of rounds after the local committee election.
const POST_ELECTION_ROUNDS: usize = 9;

/// Total number of rounds of the protocol.
pub fn rounds(params: &ProtocolParams) -> usize {
    election_rounds(params) + POST_ELECTION_ROUNDS
}

/// One party of the Algorithm 8 protocol.
///
/// Message formats are shared with Algorithm 3 ([`MpcMsg`]); only the
/// communication pattern differs (cover sets instead of the full network).
pub struct TradeoffParty {
    id: PartyId,
    params: ProtocolParams,
    functionality: Functionality,
    path: ExecutionPath,
    input: Vec<u8>,
    prg: Prg,
    host: Option<SharedHost>,
    shared_a: std::sync::Arc<Vec<u64>>,

    elect: Option<LocalCommitteeElectParty>,
    committee: BTreeSet<PartyId>,
    is_member: bool,
    /// This member's cover set `S_c` (members only).
    cover: BTreeSet<PartyId>,
    /// The members this party knows cover it (it received their public key).
    covering_members: BTreeSet<PartyId>,
    decryptor: Option<ThresholdDecryptor>,
    contributions: Vec<KeygenContribution>,
    pk_b: Option<Vec<u64>>,
    /// Ciphertexts received directly from covered parties (members only).
    direct_cts: BTreeMap<PartyId, Vec<u8>>,
    /// The merged view of everyone's ciphertexts (members only).
    ct_view: BTreeMap<PartyId, Vec<u8>>,
    equality: Option<PairwiseEquality>,
    aggregate: Option<LweCiphertext>,
    partials: Vec<PartialDecryption>,
    output: Option<Vec<u8>>,
}

impl std::fmt::Debug for TradeoffParty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TradeoffParty")
            .field("id", &self.id)
            .field("is_member", &self.is_member)
            .finish_non_exhaustive()
    }
}

impl TradeoffParty {
    /// Creates a party. See [`crate::mpc::MpcParty::new`] for the execution
    /// path requirements.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration.
    pub fn new(
        id: PartyId,
        params: ProtocolParams,
        functionality: Functionality,
        path: ExecutionPath,
        input: Vec<u8>,
        crs: CommonRandomString,
        host: Option<SharedHost>,
    ) -> Self {
        params.validate();
        assert_eq!(
            input.len(),
            functionality.input_bytes(),
            "input width does not match the functionality"
        );
        match path {
            ExecutionPath::Concrete => assert!(
                linear::supports_concrete_path(&params.lwe, &functionality),
                "functionality does not support the concrete threshold-LWE path"
            ),
            ExecutionPath::Hybrid => {
                assert!(host.is_some(), "the hybrid path requires a shared host")
            }
        }
        let shared_a = crate::crs_cache::shared_matrix(&params.lwe, &crs, b"tradeoff-lwe-matrix");
        Self {
            id,
            params,
            functionality,
            path,
            input,
            prg: crs.party_prg(id, b"tradeoff-party"),
            host,
            shared_a,
            elect: Some(LocalCommitteeElectParty::new(id, params, crs)),
            committee: BTreeSet::new(),
            is_member: false,
            cover: BTreeSet::new(),
            covering_members: BTreeSet::new(),
            decryptor: None,
            contributions: Vec::new(),
            pk_b: None,
            direct_cts: BTreeMap::new(),
            ct_view: BTreeMap::new(),
            equality: None,
            aggregate: None,
            partials: Vec::new(),
            output: None,
        }
    }

    fn other_members(&self) -> Vec<PartyId> {
        self.committee
            .iter()
            .copied()
            .filter(|c| *c != self.id)
            .collect()
    }

    fn reconstruct_pk(&self, b: &[u64]) -> Option<mpca_crypto::lwe::LwePublicKey> {
        if b.len() != self.params.lwe.pk_rows {
            return None;
        }
        Some(mpca_crypto::lwe::LwePublicKey {
            params: self.params.lwe,
            a: self.shared_a.as_ref().clone(),
            b: b.to_vec(),
        })
    }

    fn hybrid_compute(&mut self) -> Option<Vec<u8>> {
        let host = self.host.as_ref()?;
        let cts: Vec<LweCiphertext> = PartyId::all(self.params.n)
            .map(|p| match self.ct_view.get(&p) {
                Some(bytes) => {
                    mpca_wire::from_bytes(bytes).unwrap_or(LweCiphertext { chunks: Vec::new() })
                }
                None => LweCiphertext { chunks: Vec::new() },
            })
            .collect();
        host.lock()
            .expect("encfunc host lock poisoned")
            .compute(&cts)
    }

    fn concrete_aggregate(&self) -> Option<LweCiphertext> {
        let cts: Vec<LweCiphertext> = self
            .ct_view
            .values()
            .filter_map(|bytes| mpca_wire::from_bytes::<LweCiphertext>(bytes).ok())
            .filter(|ct| ct.chunks.len() == 1 && ct.chunks[0].0.len() == self.params.lwe.dim)
            .collect();
        linear::aggregate_ciphertexts(&self.params.lwe, &cts)
    }
}

impl PartyLogic for TradeoffParty {
    type Output = Vec<u8>;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Vec<u8>> {
        let election_end = election_rounds(&self.params);

        // Phase A: local committee election.
        if round < election_end {
            if round == 0 {
                ctx.milestone(Milestone::CrsReady);
            }
            let elect = self.elect.as_mut().expect("election in progress");
            return match elect.on_round(round, incoming, ctx) {
                Step::Continue => Step::Continue,
                Step::Abort(reason) => Step::Abort(reason),
                Step::Output(LocalCommitteeOutput { view, .. }) => {
                    if view.committee.is_empty() {
                        return Step::Abort(AbortReason::MissingMessage("empty committee".into()));
                    }
                    self.committee = view.committee;
                    self.is_member = view.is_member;
                    self.elect = None;
                    Step::Continue
                }
            };
        }

        let phase = round - election_end;
        match phase {
            // F_Gen sends (members only), exactly as in Algorithm 3.
            0 => {
                if self.is_member {
                    match self.path {
                        ExecutionPath::Concrete => {
                            let (contribution, decryptor) = KeygenContribution::generate(
                                &self.params.lwe,
                                &self.shared_a,
                                &mut self.prg,
                            );
                            self.contributions.push(contribution.clone());
                            self.decryptor = Some(decryptor);
                            ctx.send_to_all(self.other_members(), &MpcMsg::Keygen(contribution));
                        }
                        ExecutionPath::Hybrid => {
                            let host = self.host.as_ref().expect("hybrid host");
                            let mut r = [0u8; 32];
                            rand::RngCore::fill_bytes(&mut self.prg, &mut r);
                            {
                                let mut host = host.lock().expect("encfunc host lock poisoned");
                                host.set_expected_members(1);
                                host.submit_enc_randomness(self.id.index(), r);
                            }
                            let cost = self
                                .params
                                .cost_model(self.functionality.depth())
                                .broadcast_payload_bytes(self.params.lambda as usize / 8);
                            ctx.send_to_all(self.other_members(), &MpcMsg::Filler(vec![0u8; cost]));
                        }
                    }
                }
                Step::Continue
            }
            // Combine the key, sample the cover set, send pk to the cover.
            1 => {
                if self.is_member {
                    for envelope in incoming {
                        if !self.committee.contains(&envelope.from) {
                            return Step::Abort(AbortReason::OverReceipt(
                                "keygen message from a non-member".into(),
                            ));
                        }
                        match envelope.decode::<MpcMsg>() {
                            Ok(MpcMsg::Keygen(c)) => self.contributions.push(c),
                            Ok(MpcMsg::Filler(_)) => {}
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "unexpected message during keygen".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    let pk_b = match self.path {
                        ExecutionPath::Concrete => {
                            combine_contributions(
                                &self.params.lwe,
                                &self.shared_a,
                                &self.contributions,
                            )
                            .b
                        }
                        ExecutionPath::Hybrid => {
                            let host = self.host.as_ref().expect("hybrid host");
                            host.lock()
                                .expect("encfunc host lock poisoned")
                                .public_key()
                                .expect("members contributed")
                                .b
                        }
                    };
                    self.pk_b = Some(pk_b.clone());
                    // Step 3 of Algorithm 8: sample the cover set S_c.
                    let _span = mpca_metrics::span("core.tradeoff.cover_draw");
                    let cover_size = self.params.cover_size();
                    self.cover = self
                        .prg
                        .sample_subset(self.params.n, cover_size)
                        .into_iter()
                        .map(PartyId)
                        .collect();
                    // Step 4: forward the public key to the cover.
                    let recipients: Vec<PartyId> = self
                        .cover
                        .iter()
                        .copied()
                        .filter(|p| *p != self.id)
                        .collect();
                    ctx.send_to_all(recipients, &MpcMsg::PublicKey(pk_b));
                }
                Step::Continue
            }
            // Covered parties: check pk consistency, encrypt, reply to their
            // covering members (step 5).
            2 => {
                let mut received_pk: Option<Vec<u64>> = self.pk_b.clone();
                for envelope in incoming {
                    if !self.committee.contains(&envelope.from) {
                        return Step::Abort(AbortReason::OverReceipt(
                            "public key from a non-member".into(),
                        ));
                    }
                    match envelope.decode::<MpcMsg>() {
                        Ok(MpcMsg::PublicKey(b)) => {
                            self.covering_members.insert(envelope.from);
                            match &received_pk {
                                None => received_pk = Some(b),
                                Some(existing) => {
                                    if *existing != b {
                                        return Step::Abort(AbortReason::Equivocation(
                                            "covering members sent different public keys".into(),
                                        ));
                                    }
                                }
                            }
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed(
                                "expected a public key".into(),
                            ))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                let Some(pk_b) = received_pk else {
                    // Not covered by any member. Claim 23 makes this
                    // negligible with an honest committee; abort otherwise.
                    return Step::Abort(AbortReason::MissingMessage(
                        "not covered by any committee member".into(),
                    ));
                };
                let Some(pk) = self.reconstruct_pk(&pk_b) else {
                    return Step::Abort(AbortReason::Malformed(
                        "public key has wrong shape".into(),
                    ));
                };
                self.pk_b = Some(pk_b);
                let ct = match self.path {
                    ExecutionPath::Concrete => linear::encrypt_concrete_input(
                        &pk,
                        &mut self.prg,
                        &self.functionality,
                        &self.input,
                    )
                    .expect("validated at construction"),
                    ExecutionPath::Hybrid => pk.encrypt_bytes(&mut self.prg, &self.input),
                };
                // Members are always "covered" by themselves.
                if self.is_member {
                    self.direct_cts.insert(self.id, mpca_wire::to_bytes(&ct));
                }
                let recipients: Vec<PartyId> = self
                    .covering_members
                    .iter()
                    .copied()
                    .filter(|p| *p != self.id)
                    .collect();
                ctx.send_to_all(recipients, &MpcMsg::InputCt(ct));
                ctx.milestone(Milestone::SharesDistributed);
                Step::Continue
            }
            // Members: collect ciphertexts from their cover and forward the
            // collection to the other members (step 6).
            3 => {
                if self.is_member {
                    for envelope in incoming {
                        match envelope.decode::<MpcMsg>() {
                            Ok(MpcMsg::InputCt(ct)) => {
                                if self
                                    .direct_cts
                                    .insert(envelope.from, mpca_wire::to_bytes(&ct))
                                    .is_some()
                                {
                                    return Step::Abort(AbortReason::OverReceipt(format!(
                                        "two ciphertexts from {}",
                                        envelope.from
                                    )));
                                }
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected an input ciphertext".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    self.ct_view = self.direct_cts.clone();
                    // Re-use the Filler frame to carry the serialized map.
                    // This is the protocol's heaviest relay (a whole cover's
                    // ciphertexts): one materialisation, |C| − 1 shares.
                    let forward =
                        Payload::encode(&MpcMsg::Filler(mpca_wire::to_bytes(&self.direct_cts)));
                    ctx.send_payload_to_all(self.other_members(), &forward);
                } else if !incoming.is_empty() {
                    return Step::Abort(AbortReason::OverReceipt(
                        "ciphertext sent to a non-member".into(),
                    ));
                }
                Step::Continue
            }
            // Members: merge forwarded collections; abort on conflicting
            // copies; start the pairwise equality check (step 7).
            4 => {
                if self.is_member {
                    for envelope in incoming {
                        if !self.committee.contains(&envelope.from) {
                            return Step::Abort(AbortReason::OverReceipt(
                                "forwarded ciphertexts from a non-member".into(),
                            ));
                        }
                        match envelope.decode::<MpcMsg>() {
                            Ok(MpcMsg::Filler(bytes)) => {
                                let forwarded: BTreeMap<PartyId, Vec<u8>> =
                                    match mpca_wire::from_bytes(&bytes) {
                                        Ok(map) => map,
                                        Err(e) => {
                                            return Step::Abort(AbortReason::Malformed(
                                                e.to_string(),
                                            ))
                                        }
                                    };
                                for (source, ct_bytes) in forwarded {
                                    match self.ct_view.get(&source) {
                                        Some(existing) if *existing != ct_bytes => {
                                            return Step::Abort(AbortReason::Equivocation(
                                                format!("conflicting ciphertexts for {source}"),
                                            ));
                                        }
                                        Some(_) => {}
                                        None => {
                                            self.ct_view.insert(source, ct_bytes);
                                        }
                                    }
                                }
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected forwarded ciphertexts".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    let mut equality = PairwiseEquality::new(
                        self.id,
                        self.committee.iter().copied(),
                        self.params.lambda,
                    );
                    let encoded = encode_ct_view(&self.ct_view);
                    ctx.milestone(Milestone::VerificationStart);
                    for (peer, challenge) in equality.build_challenges(&encoded, &mut self.prg) {
                        ctx.send_msg(peer, &MpcMsg::CtChallenge(challenge));
                    }
                    self.equality = Some(equality);
                }
                Step::Continue
            }
            // Members: respond to challenges.
            5 => {
                if let Some(equality) = &mut self.equality {
                    let encoded = encode_ct_view(&self.ct_view);
                    for envelope in incoming {
                        match envelope.decode::<MpcMsg>() {
                            Ok(MpcMsg::CtChallenge(challenge)) => {
                                if envelope.from >= self.id
                                    || !self.committee.contains(&envelope.from)
                                {
                                    equality.mark_failed();
                                    continue;
                                }
                                let response = equality.respond(&challenge, &encoded);
                                ctx.send_msg(envelope.from, &MpcMsg::CtResponse(response));
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected a ciphertext challenge".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                }
                Step::Continue
            }
            // Members: verify, then F_Comp sends.
            6 => {
                if self.is_member {
                    let equality = self.equality.as_mut().expect("member ran phase 4");
                    for envelope in incoming {
                        match envelope.decode::<MpcMsg>() {
                            Ok(MpcMsg::CtResponse(response)) => equality.absorb_response(&response),
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected a ciphertext response".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    if equality.failed() {
                        return Step::Abort(AbortReason::EqualityTestFailed(
                            "ciphertext views are inconsistent".into(),
                        ));
                    }
                    match self.path {
                        ExecutionPath::Concrete => {
                            let Some(aggregate) = self.concrete_aggregate() else {
                                return Step::Abort(AbortReason::MissingMessage(
                                    "no valid ciphertexts to aggregate".into(),
                                ));
                            };
                            let decryptor = self.decryptor.as_ref().expect("member ran keygen");
                            let partial = decryptor.partial_decrypt(&mut self.prg, &aggregate);
                            self.partials.push(partial.clone());
                            self.aggregate = Some(aggregate);
                            ctx.send_to_all(self.other_members(), &MpcMsg::Partial(partial));
                        }
                        ExecutionPath::Hybrid => {
                            let cost = self.params.cost_model(self.functionality.depth());
                            let output_bits =
                                8 * self.functionality.output_bytes(self.params.n).max(1);
                            let bytes = output_bits * cost.partial_decryption_bytes() / 8;
                            ctx.send_to_all(
                                self.other_members(),
                                &MpcMsg::Filler(vec![0u8; bytes.max(1)]),
                            );
                        }
                    }
                }
                Step::Continue
            }
            // Members: combine and forward the output to their cover (step 9).
            7 => {
                if self.is_member {
                    let output = match self.path {
                        ExecutionPath::Concrete => {
                            for envelope in incoming {
                                if !self.committee.contains(&envelope.from) {
                                    return Step::Abort(AbortReason::OverReceipt(
                                        "partial decryption from a non-member".into(),
                                    ));
                                }
                                match envelope.decode::<MpcMsg>() {
                                    Ok(MpcMsg::Partial(p)) => self.partials.push(p),
                                    Ok(_) => {
                                        return Step::Abort(AbortReason::Malformed(
                                            "expected a partial decryption".into(),
                                        ))
                                    }
                                    Err(e) => {
                                        return Step::Abort(AbortReason::Malformed(e.to_string()))
                                    }
                                }
                            }
                            let aggregate = self.aggregate.as_ref().expect("member aggregated");
                            let Some(chunks) =
                                combine_partials(&self.params.lwe, aggregate, &self.partials)
                            else {
                                return Step::Abort(AbortReason::CryptoFailure(
                                    "partial decryptions are inconsistent".into(),
                                ));
                            };
                            linear::output_from_chunk(&self.functionality, chunks[0])
                        }
                        ExecutionPath::Hybrid => match self.hybrid_compute() {
                            Some(out) => out,
                            None => {
                                return Step::Abort(AbortReason::CryptoFailure(
                                    "encrypted functionality did not produce an output".into(),
                                ))
                            }
                        },
                    };
                    self.output = Some(output.clone());
                    let recipients: Vec<PartyId> = self
                        .cover
                        .iter()
                        .copied()
                        .filter(|p| *p != self.id)
                        .collect();
                    let payload = Payload::encode(&MpcMsg::Output(output));
                    ctx.send_payload_to_all(recipients, &payload);
                }
                Step::Continue
            }
            // Covered parties: check output consistency and terminate.
            8 => {
                let mut value: Option<Vec<u8>> = self.output.clone();
                for envelope in incoming {
                    if !self.committee.contains(&envelope.from) {
                        return Step::Abort(AbortReason::OverReceipt(
                            "output from a non-member".into(),
                        ));
                    }
                    match envelope.decode::<MpcMsg>() {
                        Ok(MpcMsg::Output(out)) => match &value {
                            None => value = Some(out),
                            Some(existing) => {
                                if *existing != out {
                                    return Step::Abort(AbortReason::Equivocation(
                                        "covering members sent different outputs".into(),
                                    ));
                                }
                            }
                        },
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected an output".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                match value {
                    Some(out) => Step::Output(out),
                    None => Step::Abort(AbortReason::MissingMessage(
                        "no output received from any covering member".into(),
                    )),
                }
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "tradeoff protocol ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest parties of an Algorithm 8 execution.
pub fn tradeoff_parties(
    params: &ProtocolParams,
    functionality: &Functionality,
    path: ExecutionPath,
    inputs: &[Vec<u8>],
    crs: CommonRandomString,
    host: Option<SharedHost>,
    corrupted: &BTreeSet<PartyId>,
) -> Vec<TradeoffParty> {
    assert_eq!(inputs.len(), params.n, "one input per party required");
    PartyId::all(params.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            TradeoffParty::new(
                id,
                *params,
                functionality.clone(),
                path,
                inputs[id.index()].clone(),
                crs,
                host.clone(),
            )
        })
        .collect()
}

/// Creates the shared ideal-functionality host for a hybrid-path execution.
pub fn hybrid_host(
    params: &ProtocolParams,
    functionality: &Functionality,
    crs: &CommonRandomString,
) -> SharedHost {
    let shared_a = crate::crs_cache::shared_matrix(&params.lwe, crs, b"tradeoff-lwe-matrix")
        .as_ref()
        .clone();
    mpca_encfunc::EncFuncHost::new(
        params.lwe,
        mpca_encfunc::hybrid::HostFunctionality::Single(functionality.clone()),
        1,
    )
    .with_shared_matrix(shared_a)
    .shared()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::Simulator;

    #[test]
    fn concrete_path_all_honest_computes_the_sum() {
        let params = ProtocolParams::new(32, 16).with_lwe(mpca_crypto::lwe::LweParams {
            plaintext_modulus: 1 << 16,
            ..mpca_crypto::lwe::LweParams::toy()
        });
        let functionality = Functionality::Sum { input_bytes: 2 };
        let values: Vec<u16> = (0..params.n).map(|i| (i as u16) * 13 + 5).collect();
        let inputs: Vec<Vec<u8>> = values.iter().map(|v| v.to_le_bytes().to_vec()).collect();
        let expected: u16 = values.iter().fold(0u16, |acc, v| acc.wrapping_add(*v));
        let crs = CommonRandomString::from_label(b"tradeoff-concrete");
        let parties = tradeoff_parties(
            &params,
            &functionality,
            ExecutionPath::Concrete,
            &inputs,
            crs,
            None,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(result.correct_or_aborted(&expected.to_le_bytes().to_vec()));
        // An honest run should actually finish (the negligible-probability
        // events — uncovered party, disconnected graph — do not occur for
        // this seed).
        assert_eq!(
            result.unanimous_output(),
            Some(&expected.to_le_bytes().to_vec())
        );
        assert_eq!(result.rounds, rounds(&params));
    }

    #[test]
    fn hybrid_path_all_honest_computes_the_xor() {
        let params = ProtocolParams::new(24, 12);
        let functionality = Functionality::Xor { input_bytes: 1 };
        let inputs: Vec<Vec<u8>> = (0..params.n).map(|i| vec![(i * 29) as u8]).collect();
        let expected = functionality.evaluate(&inputs);
        let crs = CommonRandomString::from_label(b"tradeoff-hybrid");
        let host = hybrid_host(&params, &functionality, &crs);
        let parties = tradeoff_parties(
            &params,
            &functionality,
            ExecutionPath::Hybrid,
            &inputs,
            crs,
            Some(host),
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(result.correct_or_aborted(&expected));
        assert_eq!(result.unanimous_output(), Some(&expected));
    }

    #[test]
    fn members_do_not_talk_to_the_whole_network() {
        // Unlike Algorithm 3, the per-member communication is bounded by the
        // cover size + committee size + routing degree.
        let params = ProtocolParams::new(64, 48).with_lwe(mpca_crypto::lwe::LweParams {
            plaintext_modulus: 1 << 16,
            ..mpca_crypto::lwe::LweParams::toy()
        });
        let functionality = Functionality::Sum { input_bytes: 2 };
        let inputs: Vec<Vec<u8>> = (0..params.n)
            .map(|i| (i as u16).to_le_bytes().to_vec())
            .collect();
        let crs = CommonRandomString::from_label(b"tradeoff-locality");
        let parties = tradeoff_parties(
            &params,
            &functionality,
            ExecutionPath::Concrete,
            &inputs,
            crs,
            None,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        let committee_size = params.local_committee_bound();
        let bound = (params.sparse_degree()
            + params.sparse_in_bound()
            + params.cover_size()
            + committee_size
            + params.committee_bound())
        .min(params.n - 1);
        assert!(
            result.honest_locality() <= bound,
            "locality {} exceeds {bound}",
            result.honest_locality()
        );
    }
}
