//! Single-source broadcast with abort (§2.1 of the paper, after \[26\]).
//!
//! The sender sends its message to everyone; every party echoes what it
//! received to everyone else; a party outputs the message only if all echoes
//! (and the direct copy, if any) agree, and aborts if it observes two
//! different values. Honest parties that output therefore output the same
//! value, even though no agreement on *whether* to output is reached — the
//! defining relaxation of broadcast **with abort**.

use std::collections::BTreeSet;

use mpca_net::{AbortReason, Envelope, Milestone, PartyCtx, PartyId, PartyLogic, Payload, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

/// Number of rounds the protocol takes.
pub const ROUNDS: usize = 3;

/// Wire messages of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BroadcastMsg {
    /// Round 0: the sender's message.
    Send(Vec<u8>),
    /// Round 1: each party's echo of what it received (`None` = nothing).
    Echo(Option<Vec<u8>>),
}

impl Encode for BroadcastMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            BroadcastMsg::Send(m) => {
                w.put_u8(0);
                w.put_len_prefixed(m);
            }
            BroadcastMsg::Echo(m) => {
                w.put_u8(1);
                m.as_ref()
                    .map(|v| v.as_slice())
                    .map(|v| v.to_vec())
                    .encode(w);
            }
        }
    }
}

impl Decode for BroadcastMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(BroadcastMsg::Send(r.get_len_prefixed()?.to_vec())),
            1 => Ok(BroadcastMsg::Echo(Option::<Vec<u8>>::decode(r)?)),
            other => Err(WireError::InvalidDiscriminant {
                ty: "BroadcastMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of the single-source broadcast-with-abort protocol.
#[derive(Debug)]
pub struct BroadcastParty {
    id: PartyId,
    n: usize,
    sender: PartyId,
    /// The message to broadcast (only meaningful when `id == sender`).
    message: Option<Vec<u8>>,
    /// What this party heard directly from the sender.
    received: Option<Vec<u8>>,
}

impl BroadcastParty {
    /// Creates the sender party.
    pub fn sender(id: PartyId, n: usize, message: Vec<u8>) -> Self {
        Self {
            id,
            n,
            sender: id,
            message: Some(message),
            received: None,
        }
    }

    /// Creates a receiving party.
    pub fn receiver(id: PartyId, n: usize, sender: PartyId) -> Self {
        Self {
            id,
            n,
            sender,
            message: None,
            received: None,
        }
    }

    fn others(&self) -> impl Iterator<Item = PartyId> + '_ {
        PartyId::all(self.n).filter(move |p| *p != self.id)
    }
}

impl PartyLogic for BroadcastParty {
    type Output = Vec<u8>;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Vec<u8>> {
        match round {
            // Broadcast step.
            0 => {
                if self.id == self.sender {
                    let message = self.message.clone().expect("sender has a message");
                    self.received = Some(message.clone());
                    // One materialised buffer fans out to n − 1 recipients.
                    let payload = Payload::encode(&BroadcastMsg::Send(message));
                    ctx.send_payload_to_all(self.others(), &payload);
                }
                Step::Continue
            }
            // Verification step: echo what was received from the sender.
            1 => {
                if self.id != self.sender {
                    let from_sender: Vec<&Envelope> =
                        incoming.iter().filter(|e| e.from == self.sender).collect();
                    if from_sender.len() > 1 {
                        return Step::Abort(AbortReason::OverReceipt(
                            "sender sent more than one message".into(),
                        ));
                    }
                    if let Some(envelope) = from_sender.first() {
                        match envelope.decode::<BroadcastMsg>() {
                            Ok(BroadcastMsg::Send(m)) => self.received = Some(m),
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected a Send message".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                }
                // The echo exchange is this protocol's verification phase.
                ctx.milestone(Milestone::VerificationStart);
                let echo = Payload::encode(&BroadcastMsg::Echo(self.received.clone()));
                ctx.send_payload_to_all(self.others(), &echo);
                Step::Continue
            }
            // Output step: all echoes must agree.
            2 => {
                let mut seen: BTreeSet<PartyId> = BTreeSet::new();
                let mut value = self.received.clone();
                for envelope in incoming {
                    if !seen.insert(envelope.from) {
                        return Step::Abort(AbortReason::OverReceipt(format!(
                            "duplicate echo from {}",
                            envelope.from
                        )));
                    }
                    let echoed = match envelope.decode::<BroadcastMsg>() {
                        Ok(BroadcastMsg::Echo(m)) => m,
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed(
                                "expected an Echo message".into(),
                            ))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    };
                    match (&value, echoed) {
                        (_, None) => {}
                        (None, Some(m)) => value = Some(m),
                        (Some(current), Some(m)) => {
                            if *current != m {
                                return Step::Abort(AbortReason::Equivocation(format!(
                                    "{} echoed a different value",
                                    envelope.from
                                )));
                            }
                        }
                    }
                }
                match value {
                    Some(m) => Step::Output(m),
                    None => Step::Abort(AbortReason::MissingMessage(
                        "no value heard from the sender".into(),
                    )),
                }
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "broadcast ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest parties for a broadcast where `sender` broadcasts
/// `message`, skipping the ids in `corrupted`.
pub fn broadcast_parties(
    n: usize,
    sender: PartyId,
    message: Vec<u8>,
    corrupted: &BTreeSet<PartyId>,
) -> Vec<BroadcastParty> {
    PartyId::all(n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            if id == sender {
                BroadcastParty::sender(id, n, message.clone())
            } else {
                BroadcastParty::receiver(id, n, sender)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::{ProxyAdversary, SilentAdversary, SimConfig, Simulator};

    #[test]
    fn all_honest_broadcast_delivers() {
        let n = 6;
        let message = b"the value is 42".to_vec();
        let parties = broadcast_parties(n, PartyId(2), message.clone(), &BTreeSet::new());
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        assert_eq!(result.unanimous_output(), Some(&message));
        assert_eq!(result.rounds, ROUNDS);
        // O(n·ℓ + n²·ℓ) total bytes: every party echoes to everyone.
        assert!(result.stats.total_messages() >= (n as u64 - 1) * n as u64);
    }

    #[test]
    fn silent_sender_leads_to_abort_everywhere() {
        let n = 5;
        let corrupted: BTreeSet<PartyId> = [PartyId(0)].into_iter().collect();
        let parties = broadcast_parties(n, PartyId(0), vec![], &corrupted);
        let sim = Simulator::new(
            n,
            parties,
            Box::new(SilentAdversary::new(corrupted)),
            SimConfig::default(),
        )
        .unwrap();
        let result = sim.run().unwrap();
        assert!(result.all_aborted());
    }

    #[test]
    fn equivocating_sender_is_caught() {
        let n = 6;
        let corrupted: BTreeSet<PartyId> = [PartyId(0)].into_iter().collect();
        let honest = broadcast_parties(n, PartyId(0), b"real".to_vec(), &corrupted);
        // The corrupted sender sends "real" to half the parties and "fake" to
        // the rest; it echoes honestly.
        let corrupted_logic = vec![BroadcastParty::sender(PartyId(0), n, b"real".to_vec())];
        let adversary = ProxyAdversary::new(corrupted_logic, n, |round, envelope| {
            let mut out = envelope.clone();
            if round == 0 && envelope.to.index() % 2 == 0 {
                out.payload = Payload::encode(&BroadcastMsg::Send(b"fake".to_vec()));
            }
            vec![out]
        });
        let sim = Simulator::new(n, honest, Box::new(adversary), SimConfig::default()).unwrap();
        let result = sim.run().unwrap();
        // No honest party may output a value other than what other honest
        // parties output: with equivocation every honest party aborts.
        assert!(result.all_aborted());
    }

    #[test]
    fn corrupted_receiver_cannot_split_honest_outputs() {
        let n = 6;
        // Receiver 3 is corrupted and lies in its echo.
        let corrupted: BTreeSet<PartyId> = [PartyId(3)].into_iter().collect();
        let honest = broadcast_parties(n, PartyId(0), b"value".to_vec(), &corrupted);
        let corrupted_logic = vec![BroadcastParty::receiver(PartyId(3), n, PartyId(0))];
        let adversary = ProxyAdversary::new(corrupted_logic, n, |round, envelope| {
            let mut out = envelope.clone();
            if round == 1 {
                out.payload = Payload::encode(&BroadcastMsg::Echo(Some(b"lie".to_vec())));
            }
            vec![out]
        });
        let sim = Simulator::new(n, honest, Box::new(adversary), SimConfig::default()).unwrap();
        let result = sim.run().unwrap();
        // Every honest party sees the sender's value and the liar's echo and
        // aborts; none outputs the lie.
        for outcome in result.outcomes.values() {
            if let Some(output) = outcome.output() {
                assert_eq!(output, &b"value".to_vec());
            }
        }
        assert!(result.any_abort());
    }

    #[test]
    fn message_wire_round_trip() {
        for msg in [
            BroadcastMsg::Send(vec![1, 2, 3]),
            BroadcastMsg::Echo(None),
            BroadcastMsg::Echo(Some(vec![9])),
        ] {
            let back: BroadcastMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
