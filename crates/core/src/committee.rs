//! Committee election (Algorithm 2, `CommitteeElect`).
//!
//! Each party self-elects with probability `p = min(1, α·log n / h)` and
//! notifies the whole network. Parties that observe suspiciously many
//! claimed members (`≥ 2pn`, step 3) abort — bounding how many liars the
//! adversary can insert. Elected members then verify pairwise, via the
//! succinct equality test, that they hold identical views of the committee.
//!
//! Guarantees (Claims 12 and 14): communication `Õ(n²/h · poly(α, λ))`; with
//! probability `1 − n^{−Ω(min(α, λ))}` either someone aborts or the agreed
//! committee contains at least one honest member.

use std::collections::BTreeSet;

use mpca_crypto::fingerprint::{EqualityChallenge, EqualityResponse};
use mpca_crypto::Prg;
use mpca_net::{AbortReason, Envelope, Milestone, PartyCtx, PartyId, PartyLogic, Payload, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::equality::PairwiseEquality;
use crate::params::ProtocolParams;

/// Number of rounds the protocol takes.
pub const ROUNDS: usize = 4;

/// The output of committee election, from one party's perspective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitteeView {
    /// The set of parties this party believes form the committee.
    pub committee: BTreeSet<PartyId>,
    /// Whether this party elected itself.
    pub is_member: bool,
}

/// Wire messages of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitteeMsg {
    /// Round 0: "I elected myself."
    Elected,
    /// Round 1: equality challenge over the encoded committee view.
    Challenge(EqualityChallenge),
    /// Round 2: equality response.
    Response(EqualityResponse),
}

impl Encode for CommitteeMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            CommitteeMsg::Elected => w.put_u8(0),
            CommitteeMsg::Challenge(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            CommitteeMsg::Response(r) => {
                w.put_u8(2);
                r.encode(w);
            }
        }
    }
}

impl Decode for CommitteeMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(CommitteeMsg::Elected),
            1 => Ok(CommitteeMsg::Challenge(EqualityChallenge::decode(r)?)),
            2 => Ok(CommitteeMsg::Response(EqualityResponse::decode(r)?)),
            other => Err(WireError::InvalidDiscriminant {
                ty: "CommitteeMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// Encodes a committee view canonically for the equality test.
pub fn encode_committee(committee: &BTreeSet<PartyId>) -> Vec<u8> {
    mpca_wire::to_bytes(committee)
}

/// One party of the committee-election protocol.
#[derive(Debug)]
pub struct CommitteeElectParty {
    id: PartyId,
    params: ProtocolParams,
    prg: Prg,
    elected: bool,
    view: BTreeSet<PartyId>,
    equality: Option<PairwiseEquality>,
}

impl CommitteeElectParty {
    /// Creates a party; `prg` supplies its private coins.
    pub fn new(id: PartyId, params: ProtocolParams, prg: Prg) -> Self {
        params.validate();
        Self {
            id,
            params,
            prg,
            elected: false,
            view: BTreeSet::new(),
            equality: None,
        }
    }

    fn others(&self) -> Vec<PartyId> {
        PartyId::all(self.params.n)
            .filter(|p| *p != self.id)
            .collect()
    }
}

impl PartyLogic for CommitteeElectParty {
    type Output = CommitteeView;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<CommitteeView> {
        match round {
            // Step 1–2: self-election and notification.
            0 => {
                // Profiling hook for the scale-n work: inert unless the
                // metrics plane is enabled.
                let _span = mpca_metrics::span("core.committee.draw");
                self.elected = self.prg.gen_bool(self.params.election_probability());
                if self.elected {
                    self.view.insert(self.id);
                    let notice = Payload::encode(&CommitteeMsg::Elected);
                    ctx.send_payload_to_all(self.others(), &notice);
                }
                Step::Continue
            }
            // Step 3–4: bound the number of claimed members; members start
            // pairwise verification.
            1 => {
                let mut announced: BTreeSet<PartyId> = BTreeSet::new();
                for envelope in incoming {
                    match envelope.decode::<CommitteeMsg>() {
                        Ok(CommitteeMsg::Elected) => {
                            if !announced.insert(envelope.from) {
                                return Step::Abort(AbortReason::OverReceipt(format!(
                                    "duplicate election notice from {}",
                                    envelope.from
                                )));
                            }
                            self.view.insert(envelope.from);
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed(
                                "expected an election notice".into(),
                            ))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                if self.view.len() >= self.params.committee_bound().max(1) {
                    return Step::Abort(AbortReason::BoundViolated(format!(
                        "{} claimed committee members exceeds the bound {}",
                        self.view.len(),
                        self.params.committee_bound()
                    )));
                }
                if self.elected {
                    let mut equality = PairwiseEquality::new(
                        self.id,
                        self.view.iter().copied(),
                        self.params.lambda,
                    );
                    let encoded = encode_committee(&self.view);
                    for (peer, challenge) in equality.build_challenges(&encoded, &mut self.prg) {
                        ctx.send_msg(peer, &CommitteeMsg::Challenge(challenge));
                    }
                    self.equality = Some(equality);
                }
                Step::Continue
            }
            // Members respond to challenges from lower-id members.
            2 => {
                if let Some(equality) = &mut self.equality {
                    let encoded = encode_committee(&self.view);
                    for envelope in incoming {
                        match envelope.decode::<CommitteeMsg>() {
                            Ok(CommitteeMsg::Challenge(challenge)) => {
                                if envelope.from >= self.id {
                                    equality.mark_failed();
                                    continue;
                                }
                                let response = equality.respond(&challenge, &encoded);
                                ctx.send_msg(envelope.from, &CommitteeMsg::Response(response));
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected an equality challenge".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                } else if !incoming.is_empty() {
                    // Non-members are not prescribed any traffic this round.
                    return Step::Abort(AbortReason::OverReceipt(
                        "unexpected message to a non-member".into(),
                    ));
                }
                Step::Continue
            }
            // Members absorb responses; everyone outputs.
            3 => {
                if let Some(equality) = &mut self.equality {
                    for envelope in incoming {
                        match envelope.decode::<CommitteeMsg>() {
                            Ok(CommitteeMsg::Response(response)) => {
                                equality.absorb_response(&response)
                            }
                            Ok(_) => {
                                return Step::Abort(AbortReason::Malformed(
                                    "expected an equality response".into(),
                                ))
                            }
                            Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                        }
                    }
                    if equality.failed() {
                        return Step::Abort(AbortReason::EqualityTestFailed(
                            "committee views are inconsistent".into(),
                        ));
                    }
                }
                // The committee is settled: announce the milestone (embedding
                // protocols share this ctx, so Theorem 1 executions carry it
                // too — protocol-aware triggers arm on exactly this event).
                ctx.milestone(Milestone::CommitteeAnnounced);
                Step::Output(CommitteeView {
                    committee: std::mem::take(&mut self.view),
                    is_member: self.elected,
                })
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "committee election ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest parties for a committee election, deriving each party's
/// coins from `seed`, and skipping corrupted ids.
pub fn committee_parties(
    params: &ProtocolParams,
    seed: &[u8],
    corrupted: &BTreeSet<PartyId>,
) -> Vec<CommitteeElectParty> {
    let base = Prg::from_seed_bytes(seed);
    PartyId::all(params.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            CommitteeElectParty::new(
                id,
                *params,
                base.derive_indexed(b"committee-elect", id.index() as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpca_net::{ProxyAdversary, SimConfig, Simulator};

    #[test]
    fn all_honest_election_agrees_and_is_nonempty() {
        let params = ProtocolParams::new(48, 16);
        let parties = committee_parties(&params, b"elect-1", &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort(), "honest election should not abort");
        let views: Vec<&CommitteeView> = result
            .outcomes
            .values()
            .map(|o| o.output().expect("no abort"))
            .collect();
        let committee = &views[0].committee;
        assert!(!committee.is_empty(), "committee should be non-empty");
        assert!(committee.len() < params.committee_bound());
        for view in &views {
            assert_eq!(
                &view.committee, committee,
                "all parties agree on the committee"
            );
        }
        // Membership flags are consistent with the agreed committee.
        for (id, outcome) in &result.outcomes {
            let view = outcome.output().unwrap();
            assert_eq!(view.is_member, committee.contains(id));
        }
    }

    #[test]
    fn committee_size_tracks_n_over_h() {
        // E[|C|] = p·n = α·n·log n / h: quadrupling h should roughly quarter
        // the committee size.
        let seed = b"size-scaling";
        let small_h = ProtocolParams::new(128, 8);
        let large_h = ProtocolParams::new(128, 64);
        let committee_size = |params: &ProtocolParams| {
            let parties = committee_parties(params, seed, &BTreeSet::new());
            let result = Simulator::all_honest(params.n, parties)
                .unwrap()
                .run()
                .unwrap();
            result
                .outcomes
                .values()
                .next()
                .unwrap()
                .output()
                .unwrap()
                .committee
                .len()
        };
        let big = committee_size(&small_h);
        let small = committee_size(&large_h);
        assert!(
            big > small,
            "committee with h=8 ({big}) should exceed committee with h=64 ({small})"
        );
    }

    #[test]
    fn lying_non_member_is_either_included_consistently_or_caught() {
        // A corrupted party announces election to only half the network.
        let params = ProtocolParams::new(24, 8);
        let corrupted: BTreeSet<PartyId> = [PartyId(5)].into_iter().collect();
        let honest = committee_parties(&params, b"liar", &corrupted);
        let liar_logic = vec![CommitteeElectParty::new(
            PartyId(5),
            params,
            Prg::from_seed_bytes(b"liar-coins"),
        )];
        let adversary = ProxyAdversary::new(liar_logic, params.n, |round, envelope| {
            if round == 0 && envelope.to.index() % 2 == 0 {
                // Selectively announce election only to even-numbered parties,
                // and always claim election.
                return vec![mpca_net::Envelope::new(
                    envelope.from,
                    envelope.to,
                    Payload::encode(&CommitteeMsg::Elected),
                )];
            }
            if round == 0 {
                return vec![];
            }
            vec![envelope.clone()]
        });
        let result = Simulator::new(params.n, honest, Box::new(adversary), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // Honest members' pairwise equality must catch the split view unless
        // the liar was not elected honestly anyway; in every case any two
        // non-aborting honest members agree.
        let member_views: Vec<&CommitteeView> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .filter(|v| v.is_member)
            .collect();
        for window in member_views.windows(2) {
            assert_eq!(window[0].committee, window[1].committee);
        }
    }

    #[test]
    fn flooding_fake_members_trips_the_bound() {
        // Corrupted parties all claim election; if the claimed committee
        // reaches 2pn every honest party aborts.
        let params = ProtocolParams::new(20, 18).with_alpha(1.0);
        let corrupted: BTreeSet<PartyId> = (10..20).map(PartyId).collect();
        // An adversary whose corrupted parties all claim election.
        struct Flood {
            corrupted: BTreeSet<PartyId>,
            n: usize,
        }
        impl mpca_net::Adversary for Flood {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                round: usize,
                _delivered: &std::collections::BTreeMap<PartyId, Vec<Envelope>>,
                ctx: &mut mpca_net::AdversaryCtx,
            ) {
                if round == 0 {
                    for &from in &self.corrupted {
                        for to in PartyId::all(self.n) {
                            if to != from {
                                ctx.send_msg_as(from, to, &CommitteeMsg::Elected);
                            }
                        }
                    }
                }
            }
        }
        let honest = committee_parties(&params, b"flood", &corrupted);
        let result = Simulator::new(
            params.n,
            honest,
            Box::new(Flood {
                corrupted: corrupted.clone(),
                n: params.n,
            }),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            result.all_aborted(),
            "ten fake members out of twenty parties must trip the 2pn bound"
        );
    }

    #[test]
    fn message_wire_round_trip() {
        let mut prg = Prg::from_seed_bytes(b"committee-wire");
        let challenge = EqualityChallenge::new(&mut prg, 16, b"view");
        for msg in [
            CommitteeMsg::Elected,
            CommitteeMsg::Challenge(challenge),
            CommitteeMsg::Response(EqualityResponse { equal: true }),
        ] {
            let back: CommitteeMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
