//! MPC with abort with near-optimal locality (Theorem 2 / Theorem 18).
//!
//! The protocol replaces the complete communication graph by the sparse
//! routing network of Algorithm 5 and realises simultaneous broadcast by the
//! responsible-gossip protocol of Algorithm 6:
//!
//! 1. `SparseNetwork` — every party ends up with `Õ(n/h)` neighbours.
//! 2. First gossip phase: every party gossips its Theorem 9 first-round
//!    payload (its contribution to the one simultaneous broadcast that the
//!    MPC-from-LWE protocol needs).
//! 3. Second gossip phase: every party gossips its output-phase payload
//!    (partial decryptions) and cross-checks the resulting output.
//!
//! Communication is dominated by gossiping `n` payloads over the
//! `O(n·d) = Õ(n²/h)` edges of the routing graph:
//! `Õ(n³/h · poly(λ, D))` bits total with locality `Õ(n/h)` — Theorem 2.
//!
//! **Substitution note.** The real construction broadcasts multi-key-FHE
//! ciphertexts and recovers the output from everyone's partial decryptions;
//! implementing MK-FHE is out of scope (DESIGN.md §2), so the gossiped
//! payload here carries the party's input padded to the Theorem 9 size and
//! the output is computed locally from the (verified-consistent) gossip
//! view. The communication pattern, payload sizes, abort logic and locality
//! — the quantities Theorem 2 bounds — are unchanged; input privacy in this
//! path relies on the hybrid-model argument rather than on real ciphertexts.

use std::collections::BTreeSet;

use mpca_encfunc::spec::Functionality;
use mpca_net::{
    AbortReason, CommonRandomString, Envelope, Milestone, PartyCtx, PartyId, PartyLogic, Payload,
    Step,
};

use crate::gossip::{GossipParty, GossipView};
use crate::params::ProtocolParams;
use crate::sparse::{Neighborhood, SparseNetworkParty};

/// Total number of rounds: sparse network + two gossip phases.
pub fn rounds(params: &ProtocolParams) -> usize {
    crate::sparse::ROUNDS + 2 * params.gossip_rounds()
}

/// One party of the Theorem 2 protocol.
#[derive(Debug)]
pub struct LocalMpcParty {
    id: PartyId,
    params: ProtocolParams,
    functionality: Functionality,
    input: Vec<u8>,

    sparse: Option<SparseNetworkParty>,
    neighbors: BTreeSet<PartyId>,
    gossip_inputs: Option<GossipParty>,
    gossip_outputs: Option<GossipParty>,
    output: Option<Vec<u8>>,
}

impl LocalMpcParty {
    /// Creates a party.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the functionality.
    pub fn new(
        id: PartyId,
        params: ProtocolParams,
        functionality: Functionality,
        input: Vec<u8>,
        crs: CommonRandomString,
    ) -> Self {
        params.validate();
        assert_eq!(
            input.len(),
            functionality.input_bytes(),
            "input width does not match the functionality"
        );
        let sparse = SparseNetworkParty::new(id, params, crs.party_prg(id, b"local-mpc-sparse"));
        Self {
            id,
            params,
            functionality,
            input,
            sparse: Some(sparse),
            neighbors: BTreeSet::new(),
            gossip_inputs: None,
            gossip_outputs: None,
            output: None,
        }
    }

    /// The Theorem 9 first-round payload: the input padded to
    /// `poly(λ, D, ℓ_in)` bytes. Materialised once; gossip shares it.
    fn input_payload(&self) -> Payload {
        let size = self
            .params
            .cost_model(self.functionality.depth())
            .broadcast_payload_bytes(self.functionality.input_bytes());
        let mut payload = self.input.clone();
        payload.resize(size.max(self.input.len()), 0);
        Payload::from(payload)
    }

    /// The output-phase payload: the locally computed output padded to the
    /// partial-decryption size. Materialised once; gossip shares it.
    fn output_payload(&self, output: &[u8]) -> Payload {
        let size = self
            .params
            .cost_model(self.functionality.depth())
            .partial_decryption_bytes()
            * 8
            * output.len().max(1);
        let mut payload = output.to_vec();
        payload.resize((size / 8).max(output.len()), 0);
        Payload::from(payload)
    }

    /// Recovers each party's input from the gossiped payload view and
    /// evaluates the functionality (missing parties default to zero input).
    fn evaluate_from_view(&self, view: &GossipView) -> Vec<u8> {
        let width = self.functionality.input_bytes();
        let inputs: Vec<Vec<u8>> = PartyId::all(self.params.n)
            .map(|id| {
                let mut bytes = view.get(&id).map(Payload::to_vec).unwrap_or_default();
                bytes.resize(width, 0);
                bytes.truncate(width);
                bytes
            })
            .collect();
        self.functionality.evaluate(&inputs)
    }
}

impl PartyLogic for LocalMpcParty {
    type Output = Vec<u8>;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Vec<u8>> {
        let gossip_rounds = self.params.gossip_rounds();

        // Phase A: sparse routing network.
        if round < crate::sparse::ROUNDS {
            if round == 0 {
                ctx.milestone(Milestone::CrsReady);
            }
            let sparse = self.sparse.as_mut().expect("sparse phase in progress");
            return match sparse.on_round(round, incoming, ctx) {
                Step::Continue => Step::Continue,
                Step::Abort(reason) => Step::Abort(reason),
                Step::Output(Neighborhood { neighbors }) => {
                    self.neighbors = neighbors;
                    self.sparse = None;
                    // Input shares start gossiping next round.
                    ctx.milestone(Milestone::SharesDistributed);
                    self.gossip_inputs = Some(GossipParty::new(
                        self.id,
                        self.neighbors.clone(),
                        Some(self.input_payload()),
                        gossip_rounds,
                    ));
                    Step::Continue
                }
            };
        }

        // Phase B: gossip the input payloads.
        let phase_b_end = crate::sparse::ROUNDS + gossip_rounds;
        if round < phase_b_end {
            let gossip = self
                .gossip_inputs
                .as_mut()
                .expect("input gossip in progress");
            return match gossip.on_round(round - crate::sparse::ROUNDS, incoming, ctx) {
                Step::Continue => Step::Continue,
                Step::Abort(reason) => Step::Abort(reason),
                Step::Output(view) => {
                    let output = self.evaluate_from_view(&view);
                    let payload = self.output_payload(&output);
                    self.output = Some(output);
                    self.gossip_inputs = None;
                    // The output cross-check gossip is this family's
                    // verification phase.
                    ctx.milestone(Milestone::VerificationStart);
                    self.gossip_outputs = Some(GossipParty::new(
                        self.id,
                        self.neighbors.clone(),
                        Some(payload),
                        gossip_rounds,
                    ));
                    Step::Continue
                }
            };
        }

        // Phase C: gossip the output payloads and cross-check.
        let gossip = self
            .gossip_outputs
            .as_mut()
            .expect("output gossip in progress");
        match gossip.on_round(round - phase_b_end, incoming, ctx) {
            Step::Continue => Step::Continue,
            Step::Abort(reason) => Step::Abort(reason),
            Step::Output(view) => {
                let my_output = self.output.clone().expect("computed after phase B");
                let my_payload_prefix = my_output.clone();
                for (source, payload) in &view {
                    if *source == self.id {
                        continue;
                    }
                    // Prefix framing over the shared buffer: `prefix` is an
                    // O(1) window, not a copy.
                    if payload.len() < my_payload_prefix.len()
                        || payload.prefix(my_payload_prefix.len()) != my_payload_prefix
                    {
                        return Step::Abort(AbortReason::Equivocation(format!(
                            "{source} reported a different output"
                        )));
                    }
                }
                Step::Output(my_output)
            }
        }
    }
}

/// Builds the honest parties of a Theorem 2 execution.
pub fn local_mpc_parties(
    params: &ProtocolParams,
    functionality: &Functionality,
    inputs: &[Vec<u8>],
    crs: CommonRandomString,
    corrupted: &BTreeSet<PartyId>,
) -> Vec<LocalMpcParty> {
    assert_eq!(inputs.len(), params.n, "one input per party required");
    PartyId::all(params.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            LocalMpcParty::new(
                id,
                *params,
                functionality.clone(),
                inputs[id.index()].clone(),
                crs,
            )
        })
        .collect()
}

/// Reference evaluation used by tests and experiments: the output honest
/// parties should compute when the corrupted parties stay silent.
pub fn expected_output(
    functionality: &Functionality,
    inputs: &[Vec<u8>],
    corrupted: &BTreeSet<PartyId>,
) -> Vec<u8> {
    let width = functionality.input_bytes();
    let effective: Vec<Vec<u8>> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            if corrupted.contains(&PartyId(i)) {
                vec![0u8; width]
            } else {
                input.clone()
            }
        })
        .collect();
    functionality.evaluate(&effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use mpca_net::{Adversary, AdversaryCtx, SilentAdversary, SimConfig, Simulator};

    fn xor_setup(n: usize) -> (Functionality, Vec<Vec<u8>>) {
        let functionality = Functionality::Xor { input_bytes: 2 };
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, (i * 7) as u8]).collect();
        (functionality, inputs)
    }

    #[test]
    fn all_honest_execution_computes_the_function() {
        let params = ProtocolParams::new(32, 16);
        let (functionality, inputs) = xor_setup(params.n);
        let crs = CommonRandomString::from_label(b"local-mpc");
        let parties = local_mpc_parties(&params, &functionality, &inputs, crs, &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        let expected = expected_output(&functionality, &inputs, &BTreeSet::new());
        assert_eq!(result.unanimous_output(), Some(&expected));
        assert_eq!(result.rounds, rounds(&params));
    }

    #[test]
    fn locality_is_far_below_the_clique() {
        let params = ProtocolParams::new(96, 64);
        let (functionality, inputs) = xor_setup(params.n);
        let crs = CommonRandomString::from_label(b"local-mpc-locality");
        let parties = local_mpc_parties(&params, &functionality, &inputs, crs, &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        let locality = result.honest_locality();
        assert!(
            locality <= params.sparse_degree() + params.sparse_in_bound(),
            "locality {locality} exceeds the routing-graph degree bound"
        );
        assert!(
            locality < params.n / 2,
            "locality {locality} is not sublinear"
        );
    }

    #[test]
    fn silent_corruptions_still_give_agreement() {
        let params = ProtocolParams::new(24, 18);
        let (functionality, inputs) = xor_setup(params.n);
        let corrupted: BTreeSet<PartyId> = (0..6).map(PartyId).collect();
        let crs = CommonRandomString::from_label(b"local-mpc-silent");
        let parties = local_mpc_parties(&params, &functionality, &inputs, crs, &corrupted);
        let result = Simulator::new(
            params.n,
            parties,
            Box::new(SilentAdversary::new(corrupted.clone())),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        let expected = expected_output(&functionality, &inputs, &corrupted);
        assert!(result.correct_or_aborted(&expected));
    }

    #[test]
    fn equivocating_input_is_detected() {
        let params = ProtocolParams::new(20, 16);
        let (functionality, inputs) = xor_setup(params.n);
        let corrupted: BTreeSet<PartyId> = [PartyId(3)].into_iter().collect();
        let crs = CommonRandomString::from_label(b"local-mpc-equiv");

        /// Sends two different input payloads to different neighbours during
        /// the input-gossip phase.
        struct SplitInput {
            corrupted: BTreeSet<PartyId>,
            n: usize,
        }
        impl Adversary for SplitInput {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                round: usize,
                _delivered: &BTreeMap<PartyId, Vec<Envelope>>,
                ctx: &mut AdversaryCtx,
            ) {
                // Round 2 is the first gossip round (after the 2 sparse
                // rounds); spray conflicting rumours to everyone — honest
                // parties that are not neighbours ignore them, neighbours
                // absorb them.
                if round == crate::sparse::ROUNDS {
                    for to in PartyId::all(self.n) {
                        if self.corrupted.contains(&to) {
                            continue;
                        }
                        let value = if to.index() % 2 == 0 {
                            vec![0xAA; 4]
                        } else {
                            vec![0xBB; 4]
                        };
                        ctx.send_msg_as(
                            PartyId(3),
                            to,
                            &crate::gossip::GossipMsg::Rumor {
                                source: PartyId(3),
                                value: value.into(),
                            },
                        );
                    }
                }
            }
        }
        let parties = local_mpc_parties(&params, &functionality, &inputs, crs, &corrupted);
        let result = Simulator::new(
            params.n,
            parties,
            Box::new(SplitInput {
                corrupted: corrupted.clone(),
                n: params.n,
            }),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        // Some honest parties abort (non-neighbour sender, or equivocation,
        // or mismatching outputs); crucially no two honest parties output
        // different values.
        let outputs: Vec<&Vec<u8>> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .collect();
        for window in outputs.windows(2) {
            assert_eq!(window[0], window[1]);
        }
        assert!(result.any_abort());
    }
}
