//! The protocol **catalog**: registry hooks naming this crate's protocol
//! families as data.
//!
//! The scenario subsystem (`mpca-scenario`) enumerates protocols, builds
//! their parties through the constructors in this crate, and checks executed
//! sessions against the paper's communication budgets. The catalog is the
//! bridge: a [`ProtocolKind`] names a family, maps it to its paper
//! statement, and computes the **budget envelope** its honest communication
//! must stay inside — the quantitative half of the security-property oracle.
//!
//! Budgets are **per-protocol envelope curves derived from golden honest
//! sweeps** (`tests/golden/comm_budget_curves.json`, regenerable with
//! `MPCA_BLESS=1 cargo test --test golden_budget_curves`): every
//! [`CalibrationPoint`] records the honest bits and locality measured over
//! the calibration labels at one `(n, h)` grid point, and a [`BudgetCurve`]
//! turns those measurements into budgets with [`BUDGET_SLACK`]× headroom —
//! tight enough (≈2× measured, versus the former ~10× hand constants) to
//! catch constant-factor regressions, not just asymptotic ones. Protocols
//! whose traffic depends on CRS-seeded committee draws
//! ([`crs_variant_traffic`](ProtocolKind::crs_variant_traffic)) additionally
//! floor each point at the grid-wide fitted envelope, so an unlucky
//! calibration draw cannot produce a budget a lucky execution draw would
//! overshoot. Off-grid parameters get the fitted envelope — the theorem
//! shape times an explicitly fitted `log₂(n)^k` polylog factor, measurable
//! now that the grid reaches `n = 512` — at the same slack; when the
//! fixture is absent entirely, the legacy calibrated constants apply.
//! DESIGN.md §7 documents the derivation.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use crate::params::ProtocolParams;

/// Multiplicative headroom the budget curves grant over the golden-measured
/// envelope. Honest executions must land inside `slack × envelope`; the
/// former hand-calibrated constants sat ~10× above the measurements.
pub const BUDGET_SLACK: u64 = 2;

/// Path of the golden calibration fixture (checked in at the workspace
/// root). Read at runtime so `MPCA_BLESS=1` regeneration takes effect
/// without a rebuild; the compiled-in copy is the fallback when the
/// binary runs away from the source tree.
pub const BUDGET_FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/comm_budget_curves.json"
);

const BUDGET_FIXTURE_COMPILED: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/comm_budget_curves.json"
));

/// A protocol family of this crate, as a first-class enumerable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Theorem 1 / Algorithm 3: committee-based MPC with abort,
    /// `Õ(n²/h)` bits (module [`mpc`](crate::mpc)).
    Theorem1Mpc,
    /// Theorem 2 / Theorem 18: sparse-gossip MPC with abort, `Õ(n³/h)` bits
    /// and locality `Õ(n/h)` (module [`local_mpc`](crate::local_mpc)).
    Theorem2LocalMpc,
    /// Theorem 4 / Algorithm 8: the communication–locality trade-off,
    /// `Õ(n³/h^{3/2})` bits (module [`tradeoff`](crate::tradeoff)).
    Theorem4Tradeoff,
    /// §2.1: single-source broadcast with abort (module
    /// [`broadcast`](crate::broadcast)).
    Broadcast,
    /// §2.1 / Remark 8: succinct all-to-all broadcast with abort (module
    /// [`all_to_all`](crate::all_to_all)).
    SuccinctAllToAll,
    /// The deliberately verification-free sum (module
    /// [`unchecked`](crate::unchecked)) — a **negative control**: it
    /// violates agreement under equivocation, which is what the oracle must
    /// detect.
    UncheckedSum,
}

impl ProtocolKind {
    /// Every protocol family in the catalog.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Theorem1Mpc,
        ProtocolKind::Theorem2LocalMpc,
        ProtocolKind::Theorem4Tradeoff,
        ProtocolKind::Broadcast,
        ProtocolKind::SuccinctAllToAll,
        ProtocolKind::UncheckedSum,
    ];

    /// The inverse of [`name`](Self::name): resolves a stable identifier
    /// back to its family (used by the golden-fixture loader).
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Short stable identifier (used in scenario labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Theorem1Mpc => "thm1-mpc",
            ProtocolKind::Theorem2LocalMpc => "thm2-local-mpc",
            ProtocolKind::Theorem4Tradeoff => "thm4-tradeoff",
            ProtocolKind::Broadcast => "broadcast",
            ProtocolKind::SuccinctAllToAll => "all-to-all",
            ProtocolKind::UncheckedSum => "unchecked-sum",
        }
    }

    /// The paper statement the family implements.
    pub fn paper_ref(self) -> &'static str {
        match self {
            ProtocolKind::Theorem1Mpc => "Theorem 1 / Algorithm 3",
            ProtocolKind::Theorem2LocalMpc => "Theorem 2 / Theorem 18",
            ProtocolKind::Theorem4Tradeoff => "Theorem 4 / Algorithm 8",
            ProtocolKind::Broadcast => "§2.1 (broadcast with abort)",
            ProtocolKind::SuccinctAllToAll => "§2.1 / Remark 8",
            ProtocolKind::UncheckedSum => "— (negative control)",
        }
    }

    /// `true` when the family detects equivocation and answers with abort.
    ///
    /// Every paper protocol does; the [`UncheckedSum`](Self::UncheckedSum)
    /// negative control deliberately does not, so the oracle has a scenario
    /// it must flag.
    pub fn detects_equivocation(self) -> bool {
        !matches!(self, ProtocolKind::UncheckedSum)
    }

    /// The `(n, h)` grid the `--sweep` campaign mode (and the golden
    /// calibration sweeps) use for this family. Grid points keep a
    /// corruption margin `n - h ≥ 2` (≥ 4 for the MPC families), so the
    /// seeded adversary classes of the sweep fit every point.
    pub fn sweep_grid(self) -> &'static [(usize, usize)] {
        match self {
            ProtocolKind::Theorem1Mpc => &[
                (8, 4),
                (12, 6),
                (16, 8),
                (16, 12),
                (24, 12),
                (32, 16),
                (48, 24),
            ],
            ProtocolKind::Theorem2LocalMpc | ProtocolKind::Theorem4Tradeoff => {
                &[(8, 4), (12, 6), (16, 8), (16, 12), (24, 12), (32, 16)]
            }
            ProtocolKind::Broadcast | ProtocolKind::UncheckedSum => {
                &[(8, 6), (12, 10), (16, 14), (24, 22), (32, 30), (48, 46)]
            }
            ProtocolKind::SuccinctAllToAll => &[(8, 6), (12, 10), (16, 14), (24, 22), (32, 30)],
        }
    }

    /// Additional calibration-only grid points: `(n, h)` pairs used by
    /// standing campaigns and tests that are not part of the sweep grid.
    /// Their goldens keep the tight per-point budgets exact wherever the
    /// oracle actually runs.
    ///
    /// The tail of each list reaches into the **asymptotic regime**
    /// (`n ∈ {192, 256, 384, 512}` where a debug-mode calibration run stays
    /// affordable): those points give the log-factor fit of
    /// [`BudgetCurve::fitted_log_exponent`] the spread it needs, instead of
    /// extrapolating polylog growth from `n ≤ 48`. The `Õ(n³)`-traffic
    /// gossip families are calibrated as far as a `cargo test` run can
    /// carry them; the `E19-asymptotics` bench experiment measures them
    /// further out in release mode.
    pub fn calibration_extras(self) -> &'static [(usize, usize)] {
        match self {
            ProtocolKind::Theorem1Mpc => &[
                (8, 6),
                (8, 8),
                (16, 14),
                (16, 15),
                (24, 20),
                (192, 96),
                (256, 128),
                (384, 192),
                (512, 256),
            ],
            ProtocolKind::Theorem2LocalMpc => {
                &[(8, 6), (8, 8), (16, 13), (48, 24), (64, 32), (96, 48)]
            }
            ProtocolKind::Theorem4Tradeoff => {
                &[(8, 6), (8, 8), (16, 14), (48, 24), (64, 32), (96, 48)]
            }
            ProtocolKind::Broadcast => &[(192, 190), (256, 254), (384, 382), (512, 510)],
            ProtocolKind::SuccinctAllToAll => &[(10, 9), (192, 190), (256, 254)],
            ProtocolKind::UncheckedSum => &[(9, 7), (192, 190), (256, 254), (384, 382), (512, 510)],
        }
    }

    /// The full calibration grid: the sweep grid plus the extras.
    pub fn calibration_grid(self) -> Vec<(usize, usize)> {
        let mut grid: Vec<(usize, usize)> = self.sweep_grid().to_vec();
        grid.extend_from_slice(self.calibration_extras());
        grid
    }

    /// `true` when the family's honest traffic depends on `h` (the MPC
    /// families size committees and routing graphs by it). The broadcast
    /// baselines and the unchecked control ignore `h` entirely, so their
    /// calibration points match on `n` alone.
    pub fn h_sensitive_traffic(self) -> bool {
        matches!(
            self,
            ProtocolKind::Theorem1Mpc
                | ProtocolKind::Theorem2LocalMpc
                | ProtocolKind::Theorem4Tradeoff
        )
    }

    /// `true` when the family's honest byte counts vary with the CRS label
    /// (committee election and routing-graph sampling are CRS-seeded, so two
    /// honest executions at the same `(n, h)` legitimately differ by more
    /// than the budget slack). Budget curves floor these families' points at
    /// the grid-wide normalised-constant fit.
    pub fn crs_variant_traffic(self) -> bool {
        self.h_sensitive_traffic()
    }

    /// The theorem's communication shape for this family, evaluated at
    /// `(n, h)` with per-party payload ℓ bytes — the quantity the paper
    /// bounds up to constants and polylog factors. Budget curves scale this
    /// shape by golden-measured constants.
    pub fn comm_shape(self, n: usize, h: usize, payload_bytes: usize) -> f64 {
        let (n, h, ell) = (n as f64, h as f64, payload_bytes as f64);
        match self {
            // Theorem 1: Õ(n²/h).
            ProtocolKind::Theorem1Mpc => n * n / h,
            // Theorem 2: Õ(n³/h).
            ProtocolKind::Theorem2LocalMpc => n * n * n / h,
            // Theorem 4: Õ(n³/h^{3/2}).
            ProtocolKind::Theorem4Tradeoff => n * n * n / (h * h.sqrt()),
            // O(n²·(ℓ + λ-ish header)): the echo phase re-sends n² times.
            ProtocolKind::Broadcast => n * n * (ell + 16.0),
            // Õ(n²·(ℓ + λ)).
            ProtocolKind::SuccinctAllToAll => n * n * (ell + 64.0),
            // n² messages of ℓ value + header bytes.
            ProtocolKind::UncheckedSum => n * n * (ell + 16.0),
        }
    }

    /// The theorem's **locality** shape: the number of distinct peers one
    /// honest party may contact, up to constants. Theorems 2 and 4 promise
    /// sublinear locality (`Õ(n/h)` and `Õ(n/√h)`); the remaining families
    /// are full-mesh (`n - 1`).
    pub fn locality_shape(self, n: usize, h: usize) -> f64 {
        let (n, h) = (n as f64, h as f64);
        match self {
            ProtocolKind::Theorem2LocalMpc => n / h,
            ProtocolKind::Theorem4Tradeoff => n / h.sqrt(),
            _ => (n - 1.0).max(1.0),
        }
    }

    /// The honest-communication **budget envelope** in bits for an execution
    /// at `params` with per-party payloads of `payload_bytes` bytes (the
    /// input length ℓ for MPC and all-to-all, the message length for
    /// broadcast).
    ///
    /// Delegates to the family's golden-derived [`BudgetCurve`]
    /// ([`BUDGET_SLACK`]× the measured envelope; see the module docs for the
    /// derivation); honest executions must land inside it, and an execution
    /// outside it means a constant-factor or accounting regression. Falls
    /// back to the legacy ~10× hand-calibrated constants only when the
    /// golden fixture carries no points for the family.
    pub fn comm_budget_bits(self, params: &ProtocolParams, payload_bytes: usize) -> u64 {
        match BudgetCurve::for_kind(self) {
            Some(curve) => curve.comm_budget_bits(params, payload_bytes),
            None => self.fallback_budget_bits(params, payload_bytes),
        }
    }

    /// The per-party **locality budget** at `params`: the maximum number of
    /// honest peers one honest party may contact. Theorems 2 and 4 promise
    /// locality, not just total bits — this is the quantitative half of the
    /// oracle's locality predicate. Always capped at `n - 1` (the full
    /// mesh); without golden points the cap is the whole budget.
    pub fn locality_budget(self, params: &ProtocolParams) -> usize {
        let cap = params.n.saturating_sub(1).max(1);
        match BudgetCurve::for_kind(self) {
            Some(curve) => curve.locality_budget(params).min(cap),
            None => cap,
        }
    }

    /// The pre-curve budget: the paper's asymptotic bounds instantiated with
    /// hand constants calibrated ~10× above the `E1`–`E5` measurements. Kept
    /// as the fallback for builds without the golden fixture, and as the
    /// yardstick the bless test tightens against.
    pub fn fallback_budget_bits(self, params: &ProtocolParams, payload_bytes: usize) -> u64 {
        let (n, h) = (params.n as u64, params.h as u64);
        let ell = payload_bytes as u64;
        match self {
            // Measured: bits·h/n² ≤ ~60k over the E1 grid.
            ProtocolKind::Theorem1Mpc => 512_000 * n * n / h,
            // Measured: bits·h/n³ ≤ ~51k over the E2 grid.
            ProtocolKind::Theorem2LocalMpc => 512_000 * n * n * n / h,
            // Measured: bits·h^{3/2}/n³ ≤ ~87k over the E3 grid.
            ProtocolKind::Theorem4Tradeoff => {
                let h_sqrt = (params.h as f64).sqrt();
                (768_000.0 * (params.n as f64).powi(3) / (params.h as f64 * h_sqrt)) as u64
            }
            // O(n·ℓ + n²·ℓ): the echo phase re-sends the message n² times.
            ProtocolKind::Broadcast => 64 * n * n * (ell + 16),
            // Õ(n²·(ℓ + λ)): measured ~585 bits per ordered pair at ℓ = 64.
            ProtocolKind::SuccinctAllToAll => 64 * n * n * (ell + 64),
            // n² messages of ⌈ℓ⌉ + header bytes.
            ProtocolKind::UncheckedSum => 64 * n * n * (ell + 16),
        }
    }
}

/// One golden honest-run measurement: the envelope (max over the
/// calibration labels) of honest bits and locality at one `(n, h)` grid
/// point of a protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationPoint {
    /// Total parties.
    pub n: usize,
    /// Guaranteed honest parties the calibration ran at.
    pub h: usize,
    /// Per-party payload length ℓ in bytes of the calibration workload.
    pub payload_bytes: usize,
    /// Honest bits charged — the max over the calibration labels.
    pub honest_bits: u64,
    /// Max per-party locality — the max over the calibration labels.
    pub max_locality: usize,
}

/// A per-protocol budget envelope derived from golden honest sweeps.
///
/// At a calibrated `(n, h)` point the communication budget is
/// [`BUDGET_SLACK`]× the measured envelope; for
/// [`crs_variant_traffic`](ProtocolKind::crs_variant_traffic) families each
/// point is additionally floored at the grid-wide normalised-constant fit
/// (`max` over points of `bits / comm_shape`), which absorbs the
/// committee-draw variance two honest labels can legitimately differ by.
/// Off-grid parameters use the fitted envelope — theorem shape ×
/// explicitly fitted `log₂(n)^k` factor
/// ([`fitted_log_exponent`](Self::fitted_log_exponent)) — at the same
/// slack.
#[derive(Debug, Clone)]
pub struct BudgetCurve {
    kind: ProtocolKind,
    points: Vec<CalibrationPoint>,
}

impl BudgetCurve {
    /// The curve of `kind` from the golden fixture, or `None` when the
    /// fixture has no points for it (callers fall back to
    /// [`ProtocolKind::fallback_budget_bits`]).
    pub fn for_kind(kind: ProtocolKind) -> Option<&'static BudgetCurve> {
        curves().get(&kind)
    }

    /// The calibration points backing this curve.
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// The golden point for `(n, h)`, if calibrated. Families whose traffic
    /// ignores `h` ([`h_sensitive_traffic`](ProtocolKind::h_sensitive_traffic)
    /// is `false`) match on `n` alone.
    pub fn calibration_point(&self, n: usize, h: usize) -> Option<&CalibrationPoint> {
        let want_h = self.kind.h_sensitive_traffic();
        self.points
            .iter()
            .find(|p| p.n == n && (!want_h || p.h == h))
    }

    /// The fitted polylog exponent `k` of the model
    /// `bits ≈ C · comm_shape(n, h, ℓ) · log₂(n)^k` — a least-squares fit
    /// over the calibration grid in `(ln log₂ n, ln(bits / shape))` space.
    ///
    /// The theorem statements hide polylog factors inside `Õ(·)`; with the
    /// grid now reaching into the asymptotic regime (`n` up to 512) the
    /// residual `bits / shape` carries enough spread to measure that factor
    /// instead of hand-waving it. Clamped to `[0, 4]` (the paper's hidden
    /// factors are at most a few powers of `log n`); degenerate grids (all
    /// points at one `n`) fit `k = 0`, reducing to the plain constant fit.
    pub fn fitted_log_exponent(&self) -> f64 {
        let samples: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| {
                let shape = self.kind.comm_shape(p.n, p.h, p.payload_bytes);
                let log_n = (p.n as f64).log2().max(1.0);
                (log_n.ln(), (p.honest_bits as f64 / shape).ln())
            })
            .collect();
        let m = samples.len() as f64;
        if samples.is_empty() {
            return 0.0;
        }
        let x_bar = samples.iter().map(|s| s.0).sum::<f64>() / m;
        let y_bar = samples.iter().map(|s| s.1).sum::<f64>() / m;
        let sxx: f64 = samples.iter().map(|s| (s.0 - x_bar).powi(2)).sum();
        if sxx < 1e-9 {
            return 0.0;
        }
        let sxy: f64 = samples.iter().map(|s| (s.0 - x_bar) * (s.1 - y_bar)).sum();
        (sxy / sxx).clamp(0.0, 4.0)
    }

    /// The envelope constant `C` of the fitted log model: the max over
    /// calibration points of `bits / (shape · log₂(n)^k)`, so the fitted
    /// envelope dominates **every** grid measurement by construction.
    fn fitted_envelope_constant(&self, k: f64) -> f64 {
        self.points
            .iter()
            .map(|p| {
                let shape = self.kind.comm_shape(p.n, p.h, p.payload_bytes);
                p.honest_bits as f64 / (shape * (p.n as f64).log2().max(1.0).powf(k))
            })
            .fold(0.0, f64::max)
    }

    /// The fitted envelope in bits at `(n, h, ℓ)`:
    /// `C · comm_shape(n, h, ℓ) · log₂(n)^k` with `k` from
    /// [`fitted_log_exponent`](Self::fitted_log_exponent) and `C` the
    /// grid-wide envelope constant under that exponent.
    pub fn fitted_envelope_bits(&self, n: usize, h: usize, payload_bytes: usize) -> f64 {
        let k = self.fitted_log_exponent();
        self.fitted_envelope_constant(k)
            * self.kind.comm_shape(n, h, payload_bytes)
            * (n as f64).log2().max(1.0).powf(k)
    }

    /// The communication budget in bits at `params` with payload ℓ =
    /// `payload_bytes` (see the type docs for the derivation).
    ///
    /// **Off-grid** parameters get the fitted-envelope verdict at the same
    /// [`BUDGET_SLACK`]× slack as calibrated points: the explicit log-factor
    /// fit (grid reaching `n = 512`) replaces the former clamp up to the
    /// legacy ~10× hand constants, which existed only because a constant
    /// fit from `n ≤ 48` points undershot the polylog growth real
    /// measurements include.
    pub fn comm_budget_bits(&self, params: &ProtocolParams, payload_bytes: usize) -> u64 {
        let shape = self.kind.comm_shape(params.n, params.h, payload_bytes);
        let fitted = self.fitted_envelope_bits(params.n, params.h, payload_bytes);
        let envelope = match self.calibration_point(params.n, params.h) {
            Some(point) => {
                // Rescale the measured point if the requested payload
                // differs from the calibrated one.
                let scale = shape / self.kind.comm_shape(point.n, point.h, point.payload_bytes);
                let measured = point.honest_bits as f64 * scale;
                if self.kind.crs_variant_traffic() {
                    measured.max(fitted)
                } else {
                    measured
                }
            }
            None => fitted,
        };
        (BUDGET_SLACK as f64 * envelope).ceil() as u64
    }

    /// The locality budget at `params`: [`BUDGET_SLACK`]× the measured
    /// per-point locality envelope (floored at the grid-wide fit for
    /// CRS-variant families, like the bit budgets), capped at `n - 1`.
    /// Off-grid parameters get the `n - 1` cap outright — locality counts
    /// peers, where a full-mesh bound is always sound and the polylog
    /// residual is too small to fit meaningfully.
    pub fn locality_budget(&self, params: &ProtocolParams) -> usize {
        let cap = params.n.saturating_sub(1).max(1);
        let shape = self.kind.locality_shape(params.n, params.h);
        let fitted = self
            .points
            .iter()
            .map(|p| p.max_locality as f64 / self.kind.locality_shape(p.n, p.h))
            .fold(0.0, f64::max)
            * shape;
        let envelope = match self.calibration_point(params.n, params.h) {
            Some(point) => {
                let measured = point.max_locality as f64;
                if self.kind.crs_variant_traffic() {
                    measured.max(fitted)
                } else {
                    measured
                }
            }
            None => return cap,
        };
        ((BUDGET_SLACK as f64 * envelope).ceil() as usize).min(cap)
    }
}

fn curves() -> &'static BTreeMap<ProtocolKind, BudgetCurve> {
    static CURVES: OnceLock<BTreeMap<ProtocolKind, BudgetCurve>> = OnceLock::new();
    CURVES.get_or_init(|| {
        let text = std::fs::read_to_string(BUDGET_FIXTURE_PATH)
            .unwrap_or_else(|_| BUDGET_FIXTURE_COMPILED.to_string());
        parse_curves(&text)
    })
}

/// Parses the golden fixture. The format is the line-oriented JSON the
/// bless test renders — one `points` entry per line — scanned with the
/// shared [`mpca_wire::linejson`] helpers; unknown protocols are skipped
/// for forward compatibility.
fn parse_curves(text: &str) -> BTreeMap<ProtocolKind, BudgetCurve> {
    use mpca_wire::linejson::{field_str, field_u64};
    let mut map: BTreeMap<ProtocolKind, BudgetCurve> = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "protocol") else {
            continue;
        };
        let Some(kind) = ProtocolKind::from_name(&name) else {
            continue;
        };
        let (Some(n), Some(h), Some(payload), Some(bits), Some(locality)) = (
            field_u64(line, "n"),
            field_u64(line, "h"),
            field_u64(line, "payload_bytes"),
            field_u64(line, "honest_bits"),
            field_u64(line, "max_locality"),
        ) else {
            continue;
        };
        map.entry(kind)
            .or_insert_with(|| BudgetCurve {
                kind,
                points: Vec::new(),
            })
            .points
            .push(CalibrationPoint {
                n: n as usize,
                h: h as usize,
                payload_bytes: payload as usize,
                honest_bits: bits,
                max_locality: locality as usize,
            });
    }
    map
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::BTreeSet<&str> =
            ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
        assert_eq!(ProtocolKind::Theorem1Mpc.to_string(), "thm1-mpc");
        assert!(ProtocolKind::Theorem1Mpc.paper_ref().contains("Theorem 1"));
    }

    #[test]
    fn only_the_negative_control_skips_equivocation_detection() {
        for kind in ProtocolKind::ALL {
            assert_eq!(
                kind.detects_equivocation(),
                kind != ProtocolKind::UncheckedSum
            );
        }
    }

    #[test]
    fn budgets_track_the_theorem_shapes() {
        let loose = ProtocolParams::new(64, 8);
        let tight = ProtocolParams::new(64, 32);
        // More honest parties → smaller budget for every h-dependent family,
        // whether the curve or the fallback answers (n = 64 is off-grid, so
        // this exercises the fitted-shape path once the fixture is blessed).
        for kind in [
            ProtocolKind::Theorem1Mpc,
            ProtocolKind::Theorem2LocalMpc,
            ProtocolKind::Theorem4Tradeoff,
        ] {
            assert!(kind.comm_budget_bits(&loose, 2) > kind.comm_budget_bits(&tight, 2));
        }
        // The h-insensitive families ignore h but scale with n.
        for kind in [
            ProtocolKind::Broadcast,
            ProtocolKind::SuccinctAllToAll,
            ProtocolKind::UncheckedSum,
        ] {
            assert_eq!(
                kind.comm_budget_bits(&ProtocolParams::new(64, 8), 32),
                kind.comm_budget_bits(&ProtocolParams::new(64, 32), 32)
            );
            assert!(
                kind.comm_budget_bits(&ProtocolParams::new(64, 8), 32)
                    > kind.comm_budget_bits(&ProtocolParams::new(32, 8), 32)
            );
        }
        // The fitted envelopes (log-factor fit over the asymptotic-regime
        // grid) must still cover the measured E1/E2/E3 envelopes at
        // paper-scale parameters — the fitted-envelope verdict replaced the
        // legacy clamp, so this is the no-false-flag guarantee now.
        let e1 = ProtocolParams::new(64, 8);
        assert!(ProtocolKind::Theorem1Mpc.comm_budget_bits(&e1, 2) > 30_553_088);
        let e2 = ProtocolParams::new(96, 48);
        assert!(ProtocolKind::Theorem2LocalMpc.comm_budget_bits(&e2, 2) > 939_665_664);
        let e3 = ProtocolParams::new(64, 48);
        assert!(ProtocolKind::Theorem4Tradeoff.comm_budget_bits(&e3, 2) > 68_627_744);
    }

    #[test]
    fn sweep_grids_keep_corruption_margins() {
        for kind in ProtocolKind::ALL {
            assert!(!kind.sweep_grid().is_empty());
            for &(n, h) in kind.sweep_grid() {
                assert!(h < n, "{kind}: sweep point ({n}, {h}) has no margin");
                let margin = n - h;
                let required = if kind.h_sensitive_traffic() { 4 } else { 2 };
                assert!(
                    margin >= required,
                    "{kind}: sweep point ({n}, {h}) margin {margin} < {required}"
                );
            }
            let grid = kind.calibration_grid();
            assert!(grid.len() >= kind.sweep_grid().len());
            assert_eq!(ProtocolKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ProtocolKind::from_name("no-such-protocol"), None);
    }

    #[test]
    fn curves_parse_and_budget_from_golden_points() {
        let fixture = concat!(
            "{\"schema\":\"mpc-aborts/comm-budget-curves/v1\",\n",
            "{\"protocol\":\"unchecked-sum\",\"n\":8,\"h\":6,\"payload_bytes\":8,",
            "\"honest_bits\":4000,\"max_locality\":7},\n",
            "{\"protocol\":\"thm1-mpc\",\"n\":8,\"h\":4,\"payload_bytes\":2,",
            "\"honest_bits\":100000,\"max_locality\":7},\n",
            "{\"protocol\":\"thm1-mpc\",\"n\":16,\"h\":8,\"payload_bytes\":2,",
            "\"honest_bits\":200000,\"max_locality\":15},\n",
            "{\"protocol\":\"not-a-protocol\",\"n\":8,\"h\":6,\"payload_bytes\":8,",
            "\"honest_bits\":1,\"max_locality\":1}\n",
        );
        let curves = parse_curves(fixture);
        assert_eq!(curves.len(), 2, "unknown protocols are skipped");

        // h-insensitive: exact per-point budget is slack × measured, however
        // h is spelled; off-grid n gets the fitted-envelope verdict. With a
        // single grid point there is no spread to fit a log factor from, so
        // k = 0 and the envelope is the plain normalised-constant fit.
        let sum = &curves[&ProtocolKind::UncheckedSum];
        let params = ProtocolParams::new(8, 7);
        assert_eq!(sum.comm_budget_bits(&params, 8), 2 * 4000);
        assert_eq!(sum.locality_budget(&params), 7, "2×7 capped at n − 1");
        let off_grid = ProtocolParams::new(16, 14);
        assert_eq!(sum.fitted_log_exponent(), 0.0, "one point → no log fit");
        let fitted = 4000.0 / ProtocolKind::UncheckedSum.comm_shape(8, 6, 8);
        let shape_fit =
            (2.0 * fitted * ProtocolKind::UncheckedSum.comm_shape(16, 14, 8)).ceil() as u64;
        assert_eq!(
            sum.comm_budget_bits(&off_grid, 8),
            shape_fit,
            "off-grid budgets are the fitted envelope at the same slack"
        );
        assert_eq!(
            sum.locality_budget(&off_grid),
            15,
            "off-grid locality is the full-mesh cap"
        );

        // CRS-variant: the point is floored at the grid-wide fit. The
        // (8, 4) point's normalised constant (100000/16 = 6250) dominates
        // the (16, 8) one (200000/32 = 6250 — equal here), so the floor is
        // the measured value and the budget is exactly 2× measured.
        let thm1 = &curves[&ProtocolKind::Theorem1Mpc];
        assert_eq!(
            thm1.comm_budget_bits(&ProtocolParams::new(16, 8), 2),
            2 * 200_000
        );
        // A lucky (low) draw at one point is lifted by the other point's
        // constant: drop the (16, 8) measurement to 50000 and its budget
        // floors at 2 × 6250 × shape(16, 8) = 400000 instead of 100000.
        let mut lucky = thm1.clone();
        lucky.points[1].honest_bits = 50_000;
        assert_eq!(
            lucky.comm_budget_bits(&ProtocolParams::new(16, 8), 2),
            2 * 6250 * 32
        );
    }

    #[test]
    fn log_factor_is_fitted_from_grid_spread() {
        // Synthetic grid following bits = 1000 · shape · log₂(n) exactly:
        // the fit must recover k = 1 and the off-grid envelope must carry
        // the log factor instead of extrapolating the bare theorem shape.
        let kind = ProtocolKind::UncheckedSum;
        let lines: Vec<String> = [8usize, 16, 32, 64, 128]
            .into_iter()
            .map(|n| {
                let bits = (1000.0 * kind.comm_shape(n, n - 2, 8) * (n as f64).log2()) as u64;
                format!(
                    "{{\"protocol\":\"unchecked-sum\",\"n\":{n},\"h\":{},\"payload_bytes\":8,\
                     \"honest_bits\":{bits},\"max_locality\":{}}}",
                    n - 2,
                    n - 1
                )
            })
            .collect();
        let curves = parse_curves(&lines.join("\n"));
        let curve = &curves[&kind];
        let k = curve.fitted_log_exponent();
        assert!((k - 1.0).abs() < 0.05, "fitted k = {k}, expected ≈ 1");
        // Off-grid at n = 256: the envelope must sit within a few percent
        // of the generating model (the envelope constant is a max over
        // near-identical per-point constants, so it cannot undershoot).
        let model = 1000.0 * kind.comm_shape(256, 254, 8) * 8.0;
        let envelope = curve.fitted_envelope_bits(256, 254, 8);
        assert!(
            envelope >= model * 0.98 && envelope <= model * 1.10,
            "envelope {envelope} vs model {model}"
        );
        // And a constant-only grid (k = 0) stays a pure shape fit.
        let flat = parse_curves(
            "{\"protocol\":\"unchecked-sum\",\"n\":8,\"h\":6,\"payload_bytes\":8,\
             \"honest_bits\":4000,\"max_locality\":7}\n\
             {\"protocol\":\"unchecked-sum\",\"n\":16,\"h\":14,\"payload_bytes\":8,\
             \"honest_bits\":16000,\"max_locality\":15}",
        );
        let flat_k = flat[&kind].fitted_log_exponent();
        assert!(
            flat_k.abs() < 1e-6,
            "shape-proportional grid fits k = 0, got {flat_k}"
        );
    }
}
