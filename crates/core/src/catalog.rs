//! The protocol **catalog**: registry hooks naming this crate's protocol
//! families as data.
//!
//! The scenario subsystem (`mpca-scenario`) enumerates protocols, builds
//! their parties through the constructors in this crate, and checks executed
//! sessions against the paper's communication budgets. The catalog is the
//! bridge: a [`ProtocolKind`] names a family, maps it to its paper
//! statement, and computes the **budget envelope** its honest communication
//! must stay inside — the quantitative half of the security-property oracle.
//!
//! Budgets are the paper's asymptotic bounds instantiated with constants
//! calibrated against the measured sweeps (`E1`–`E5` in
//! `BENCH_results.json`), with roughly an order of magnitude of headroom:
//! the oracle's job is to catch asymptotic regressions and accounting bugs
//! (charging adversarial junk, double-charging relays), not to re-prove the
//! constants.

use crate::params::ProtocolParams;

/// A protocol family of this crate, as a first-class enumerable value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProtocolKind {
    /// Theorem 1 / Algorithm 3: committee-based MPC with abort,
    /// `Õ(n²/h)` bits (module [`mpc`](crate::mpc)).
    Theorem1Mpc,
    /// Theorem 2 / Theorem 18: sparse-gossip MPC with abort, `Õ(n³/h)` bits
    /// and locality `Õ(n/h)` (module [`local_mpc`](crate::local_mpc)).
    Theorem2LocalMpc,
    /// Theorem 4 / Algorithm 8: the communication–locality trade-off,
    /// `Õ(n³/h^{3/2})` bits (module [`tradeoff`](crate::tradeoff)).
    Theorem4Tradeoff,
    /// §2.1: single-source broadcast with abort (module
    /// [`broadcast`](crate::broadcast)).
    Broadcast,
    /// §2.1 / Remark 8: succinct all-to-all broadcast with abort (module
    /// [`all_to_all`](crate::all_to_all)).
    SuccinctAllToAll,
    /// The deliberately verification-free sum (module
    /// [`unchecked`](crate::unchecked)) — a **negative control**: it
    /// violates agreement under equivocation, which is what the oracle must
    /// detect.
    UncheckedSum,
}

impl ProtocolKind {
    /// Every protocol family in the catalog.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Theorem1Mpc,
        ProtocolKind::Theorem2LocalMpc,
        ProtocolKind::Theorem4Tradeoff,
        ProtocolKind::Broadcast,
        ProtocolKind::SuccinctAllToAll,
        ProtocolKind::UncheckedSum,
    ];

    /// Short stable identifier (used in scenario labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Theorem1Mpc => "thm1-mpc",
            ProtocolKind::Theorem2LocalMpc => "thm2-local-mpc",
            ProtocolKind::Theorem4Tradeoff => "thm4-tradeoff",
            ProtocolKind::Broadcast => "broadcast",
            ProtocolKind::SuccinctAllToAll => "all-to-all",
            ProtocolKind::UncheckedSum => "unchecked-sum",
        }
    }

    /// The paper statement the family implements.
    pub fn paper_ref(self) -> &'static str {
        match self {
            ProtocolKind::Theorem1Mpc => "Theorem 1 / Algorithm 3",
            ProtocolKind::Theorem2LocalMpc => "Theorem 2 / Theorem 18",
            ProtocolKind::Theorem4Tradeoff => "Theorem 4 / Algorithm 8",
            ProtocolKind::Broadcast => "§2.1 (broadcast with abort)",
            ProtocolKind::SuccinctAllToAll => "§2.1 / Remark 8",
            ProtocolKind::UncheckedSum => "— (negative control)",
        }
    }

    /// `true` when the family detects equivocation and answers with abort.
    ///
    /// Every paper protocol does; the [`UncheckedSum`](Self::UncheckedSum)
    /// negative control deliberately does not, so the oracle has a scenario
    /// it must flag.
    pub fn detects_equivocation(self) -> bool {
        !matches!(self, ProtocolKind::UncheckedSum)
    }

    /// The honest-communication **budget envelope** in bits for an execution
    /// at `params` with per-party payloads of `payload_bytes` bytes (the
    /// input length ℓ for MPC and all-to-all, the message length for
    /// broadcast).
    ///
    /// Instantiates the theorem's bound for the family with a constant
    /// calibrated against the measured sweeps (see module docs); honest
    /// executions must land well inside it, and an execution outside it
    /// means an asymptotic or accounting regression.
    pub fn comm_budget_bits(self, params: &ProtocolParams, payload_bytes: usize) -> u64 {
        let (n, h) = (params.n as u64, params.h as u64);
        let ell = payload_bytes as u64;
        match self {
            // Measured: bits·h/n² ≤ ~60k over the E1 grid.
            ProtocolKind::Theorem1Mpc => 512_000 * n * n / h,
            // Measured: bits·h/n³ ≤ ~51k over the E2 grid.
            ProtocolKind::Theorem2LocalMpc => 512_000 * n * n * n / h,
            // Measured: bits·h^{3/2}/n³ ≤ ~87k over the E3 grid.
            ProtocolKind::Theorem4Tradeoff => {
                let h_sqrt = (params.h as f64).sqrt();
                (768_000.0 * (params.n as f64).powi(3) / (params.h as f64 * h_sqrt)) as u64
            }
            // O(n·ℓ + n²·ℓ): the echo phase re-sends the message n² times.
            ProtocolKind::Broadcast => 64 * n * n * (ell + 16),
            // Õ(n²·(ℓ + λ)): measured ~585 bits per ordered pair at ℓ = 64.
            ProtocolKind::SuccinctAllToAll => 64 * n * n * (ell + 64),
            // n² messages of ⌈ℓ⌉ + header bytes.
            ProtocolKind::UncheckedSum => 64 * n * n * (ell + 16),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::BTreeSet<&str> =
            ProtocolKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ProtocolKind::ALL.len());
        assert_eq!(ProtocolKind::Theorem1Mpc.to_string(), "thm1-mpc");
        assert!(ProtocolKind::Theorem1Mpc.paper_ref().contains("Theorem 1"));
    }

    #[test]
    fn only_the_negative_control_skips_equivocation_detection() {
        for kind in ProtocolKind::ALL {
            assert_eq!(
                kind.detects_equivocation(),
                kind != ProtocolKind::UncheckedSum
            );
        }
    }

    #[test]
    fn budgets_track_the_theorem_shapes() {
        let loose = ProtocolParams::new(64, 8);
        let tight = ProtocolParams::new(64, 32);
        // More honest parties → smaller budget for every h-dependent family.
        for kind in [
            ProtocolKind::Theorem1Mpc,
            ProtocolKind::Theorem2LocalMpc,
            ProtocolKind::Theorem4Tradeoff,
        ] {
            assert!(kind.comm_budget_bits(&loose, 2) > kind.comm_budget_bits(&tight, 2));
        }
        // Budgets cover the measured E1/E2/E3 envelopes with headroom.
        let e1 = ProtocolParams::new(64, 8);
        assert!(ProtocolKind::Theorem1Mpc.comm_budget_bits(&e1, 2) > 30_553_088);
        let e2 = ProtocolParams::new(96, 48);
        assert!(ProtocolKind::Theorem2LocalMpc.comm_budget_bits(&e2, 2) > 939_665_664);
        let e3 = ProtocolParams::new(64, 48);
        assert!(ProtocolKind::Theorem4Tradeoff.comm_budget_bits(&e3, 2) > 68_627_744);
    }
}
