//! Per-protocol **frame schemas**: structural decoders over this crate's
//! wire messages, built on the [`mpca_wire`] framing primitives.
//!
//! A [`FrameSchema`] maps one [`ProtocolKind`] to the message enums its
//! envelopes carry and decodes an opaque payload into a [`Frame`] — a stable
//! variant tag plus named byte spans. Two consumers:
//!
//! * the trace plane (`mpca-trace`) tags every recorded envelope with its
//!   frame tag, turning byte streams into phase-readable transcripts;
//! * framing-aware adversaries
//!   ([`Equivocate::with_rewriter`](mpca_net::Equivocate::with_rewriter))
//!   tamper a *field* inside a frame — the copy still parses, so the attack
//!   reaches the protocol's verification instead of dying in its parser.
//!
//! Families whose executions mix message enums across phases (Theorem 1
//! mixes committee-election and MPC messages; Theorem 4 adds gossip and
//! connection messages) are framed by trying each enum's decoder in a fixed
//! order and keeping the first that consumes the buffer exactly. The order
//! puts the dominant enum first; tags are therefore authoritative for
//! tampering targets (a tamper only fires on an exact tag match) and
//! best-effort for pure tracing of short ambiguous buffers.
//!
//! Field **mutability** encodes what framing-aware tampering may touch:
//! value bytes (key words, ciphertext words, output bytes) are mutable,
//! discriminants and length prefixes are not — a tampered frame is
//! guaranteed to re-parse as the same variant with exactly one field
//! changed. `tests/proptest_frames.rs` pins both properties for every
//! family.

use mpca_wire::{Frame, FrameReader, Reader, WireError};

use crate::catalog::ProtocolKind;

/// One message enum's framing attempt: decodes the full buffer or fails.
type FrameDecoder = fn(&[u8]) -> Result<Frame, WireError>;

/// Frames one encoded message of a protocol family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSchema {
    kind: ProtocolKind,
}

impl FrameSchema {
    /// The schema of `kind`.
    pub fn new(kind: ProtocolKind) -> Self {
        Self { kind }
    }

    /// The protocol family this schema frames.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Decodes `bytes` into a [`Frame`], or `None` when no message enum of
    /// the family consumes the buffer exactly.
    pub fn decode(&self, bytes: &[u8]) -> Option<Frame> {
        let attempts: &[FrameDecoder] = match self.kind {
            ProtocolKind::Theorem1Mpc => &[frame_mpc_msg, frame_committee_msg],
            ProtocolKind::Theorem4Tradeoff => &[
                frame_mpc_msg,
                frame_local_committee_msg,
                frame_gossip_msg,
                frame_connect_msg,
            ],
            ProtocolKind::Theorem2LocalMpc => &[frame_gossip_msg, frame_connect_msg],
            ProtocolKind::Broadcast => &[frame_broadcast_msg],
            ProtocolKind::SuccinctAllToAll => &[frame_succinct_msg],
            ProtocolKind::UncheckedSum => &[frame_sum_value],
        };
        attempts.iter().find_map(|attempt| attempt(bytes).ok())
    }

    /// The frame tag of `bytes`, when it frames.
    pub fn tag(&self, bytes: &[u8]) -> Option<&'static str> {
        self.decode(bytes).map(|f| f.tag)
    }

    /// Rewrites exactly the bytes of mutable field `field` when `bytes`
    /// frames with tag `tag`; `None` otherwise. The result always re-parses
    /// as the same variant (see [`Frame::tamper`]).
    pub fn tamper(&self, bytes: &[u8], tag: &str, field: &str) -> Option<Vec<u8>> {
        let frame = self.decode(bytes)?;
        if frame.tag != tag {
            return None;
        }
        frame.tamper(bytes, field)
    }
}

/// Records `count` little-endian `u64` words as one mutable span.
fn u64_run(
    fr: &mut FrameReader<'_>,
    name: &str,
    count: usize,
    mutable: bool,
) -> Result<(), WireError> {
    fr.field_with(name.to_string(), mutable, |r| {
        for _ in 0..count {
            r.get_u64()?;
        }
        Ok(())
    })
}

/// Records a varint as an immutable field and returns it (bounds-checked so
/// framing never allocates for a hostile length).
fn varint_field(fr: &mut FrameReader<'_>, name: &str) -> Result<usize, WireError> {
    let value = fr.field_with(name.to_string(), false, Reader::get_uvarint)?;
    if value > 1 << 20 {
        return Err(WireError::Invalid("declared count too large for framing"));
    }
    Ok(value as usize)
}

/// Records a length-prefixed byte string as two fields: the immutable
/// `<name>.len` prefix and the mutable `<name>` body.
fn len_prefixed_field(fr: &mut FrameReader<'_>, name: &str) -> Result<(), WireError> {
    let len = fr.field_with(format!("{name}.len"), false, Reader::get_uvarint)?;
    if len > mpca_wire::MAX_FIELD_LEN {
        return Err(WireError::LengthOverflow { declared: len });
    }
    fr.field_with(name.to_string(), true, |r| {
        r.get_bytes(len as usize)?;
        Ok(())
    })
}

/// Frames an `LweCiphertext` body: `count` immutable, then per chunk the
/// immutable `dim.<i>` prefix, the mutable `c1.<i>` word run and the mutable
/// `c2.<i>` word — so `c2.0` names the tamper target of a concrete-path
/// input ciphertext.
fn ciphertext_fields(fr: &mut FrameReader<'_>) -> Result<(), WireError> {
    let chunks = varint_field(fr, "count")?;
    for i in 0..chunks {
        let dim = varint_field(fr, &format!("dim.{i}"))?;
        u64_run(fr, &format!("c1.{i}"), dim, true)?;
        u64_run(fr, &format!("c2.{i}"), 1, true)?;
    }
    Ok(())
}

/// Frames an `EqualityChallenge`: the prime is immutable (tampering it could
/// leave the modulus composite, changing the *kind* of failure), the
/// fingerprint is the mutable attack surface.
fn challenge_fields(fr: &mut FrameReader<'_>) -> Result<(), WireError> {
    u64_run(fr, "prime", 1, false)?;
    u64_run(fr, "fingerprint", 1, true)
}

/// `mpca_core::mpc::MpcMsg` (shared by Theorems 1 and 4).
fn frame_mpc_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => {
            let len = varint_field(&mut fr, "len")?;
            u64_run(&mut fr, "b", len, true)?;
            fr.finish("mpc:keygen")
        }
        1 => {
            len_prefixed_field(&mut fr, "body")?;
            fr.finish("mpc:filler")
        }
        2 => {
            let len = varint_field(&mut fr, "len")?;
            u64_run(&mut fr, "b", len, true)?;
            fr.finish("mpc:public-key")
        }
        3 => {
            ciphertext_fields(&mut fr)?;
            fr.finish("mpc:input-ct")
        }
        4 => {
            challenge_fields(&mut fr)?;
            fr.finish("mpc:ct-challenge")
        }
        5 => {
            fr.field::<bool>("equal", false)?;
            fr.finish("mpc:ct-response")
        }
        6 => {
            let len = varint_field(&mut fr, "len")?;
            u64_run(&mut fr, "values", len, true)?;
            fr.finish("mpc:partial")
        }
        7 => {
            len_prefixed_field(&mut fr, "output")?;
            fr.finish("mpc:output")
        }
        other => Err(WireError::InvalidDiscriminant {
            ty: "MpcMsg",
            value: u64::from(other),
        }),
    }
}

/// `mpca_core::committee::CommitteeMsg`.
fn frame_committee_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => fr.finish("committee:elected"),
        1 => {
            challenge_fields(&mut fr)?;
            fr.finish("committee:challenge")
        }
        2 => {
            fr.field::<bool>("equal", false)?;
            fr.finish("committee:response")
        }
        other => Err(WireError::InvalidDiscriminant {
            ty: "CommitteeMsg",
            value: u64::from(other),
        }),
    }
}

/// `mpca_core::local_committee::LocalCommitteeMsg`.
fn frame_local_committee_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => {
            challenge_fields(&mut fr)?;
            fr.finish("local-committee:challenge")
        }
        1 => {
            fr.field::<bool>("equal", false)?;
            fr.finish("local-committee:response")
        }
        other => Err(WireError::InvalidDiscriminant {
            ty: "LocalCommitteeMsg",
            value: u64::from(other),
        }),
    }
}

/// `mpca_core::gossip::GossipMsg`.
fn frame_gossip_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => {
            fr.field_with("source", false, Reader::get_uvarint)?;
            len_prefixed_field(&mut fr, "value")?;
            fr.finish("gossip:rumour")
        }
        1 => fr.finish("gossip:warning"),
        other => Err(WireError::InvalidDiscriminant {
            ty: "GossipMsg",
            value: u64::from(other),
        }),
    }
}

/// `mpca_core::sparse::ConnectMsg`.
fn frame_connect_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    if disc != 0 {
        return Err(WireError::InvalidDiscriminant {
            ty: "ConnectMsg",
            value: u64::from(disc),
        });
    }
    fr.finish("sparse:connect")
}

/// `mpca_core::broadcast::BroadcastMsg`.
fn frame_broadcast_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => {
            len_prefixed_field(&mut fr, "message")?;
            fr.finish("bcast:send")
        }
        1 => {
            let some: bool = fr.field("some", false)?;
            if some {
                len_prefixed_field(&mut fr, "message")?;
            }
            fr.finish("bcast:echo")
        }
        other => Err(WireError::InvalidDiscriminant {
            ty: "BroadcastMsg",
            value: u64::from(other),
        }),
    }
}

/// `mpca_core::all_to_all::SuccinctMsg`.
fn frame_succinct_msg(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    let disc: u8 = fr.field("disc", false)?;
    match disc {
        0 => {
            len_prefixed_field(&mut fr, "input")?;
            fr.finish("a2a:input")
        }
        1 => {
            challenge_fields(&mut fr)?;
            fr.finish("a2a:challenge")
        }
        2 => {
            fr.field::<bool>("equal", false)?;
            fr.finish("a2a:response")
        }
        other => Err(WireError::InvalidDiscriminant {
            ty: "SuccinctMsg",
            value: u64::from(other),
        }),
    }
}

/// The unchecked sum's bare little-endian `u64` value.
fn frame_sum_value(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut fr = FrameReader::new(bytes);
    u64_run(&mut fr, "value", 1, true)?;
    fr.finish("sum:value")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::BroadcastMsg;
    use crate::committee::CommitteeMsg;
    use crate::mpc::MpcMsg;
    use mpca_crypto::lwe::LweCiphertext;

    #[test]
    fn mpc_frames_tag_and_tile() {
        let schema = FrameSchema::new(ProtocolKind::Theorem1Mpc);
        let pk = mpca_wire::to_bytes(&MpcMsg::PublicKey(vec![7, 8, 9]));
        let frame = schema.decode(&pk).unwrap();
        assert_eq!(frame.tag, "mpc:public-key");
        assert!(frame.covers_exactly());
        assert_eq!(frame.reassemble(&pk).unwrap(), pk);
        assert_eq!(frame.field("b").unwrap().len(), 24);

        let elected = mpca_wire::to_bytes(&CommitteeMsg::Elected);
        assert_eq!(schema.tag(&elected), Some("committee:elected"));

        let output = mpca_wire::to_bytes(&MpcMsg::Output(vec![1, 2, 3, 4]));
        assert_eq!(schema.tag(&output), Some("mpc:output"));
        assert!(schema.tag(&[0xFF, 0xFF]).is_none());
    }

    #[test]
    fn tampered_public_key_still_parses_but_differs() {
        let schema = FrameSchema::new(ProtocolKind::Theorem1Mpc);
        let msg = MpcMsg::PublicKey(vec![1, 2, 3]);
        let bytes = mpca_wire::to_bytes(&msg);
        let tampered = schema.tamper(&bytes, "mpc:public-key", "b").unwrap();
        assert_eq!(tampered.len(), bytes.len(), "length (and charge) preserved");
        let reparsed: MpcMsg = mpca_wire::from_bytes(&tampered).expect("still parses");
        match reparsed {
            MpcMsg::PublicKey(b) => assert_ne!(b, vec![1, 2, 3]),
            other => panic!("variant changed: {other:?}"),
        }
        // Wrong tag or immutable field: no tamper.
        assert!(schema.tamper(&bytes, "mpc:output", "b").is_none());
        assert!(schema.tamper(&bytes, "mpc:public-key", "len").is_none());
    }

    #[test]
    fn tampered_input_ciphertext_targets_one_chunk_word() {
        let schema = FrameSchema::new(ProtocolKind::Theorem1Mpc);
        let ct = LweCiphertext {
            chunks: vec![(vec![11, 22, 33], 44)],
        };
        let bytes = mpca_wire::to_bytes(&MpcMsg::InputCt(ct));
        let tampered = schema.tamper(&bytes, "mpc:input-ct", "c2.0").unwrap();
        let reparsed: MpcMsg = mpca_wire::from_bytes(&tampered).expect("still parses");
        match reparsed {
            MpcMsg::InputCt(ct) => {
                assert_eq!(ct.chunks[0].0, vec![11, 22, 33], "c1 untouched");
                assert_ne!(ct.chunks[0].1, 44, "c2 changed");
            }
            other => panic!("variant changed: {other:?}"),
        }
    }

    #[test]
    fn every_family_frames_its_own_traffic() {
        let bcast = mpca_wire::to_bytes(&BroadcastMsg::Echo(Some(vec![5; 4])));
        assert_eq!(
            FrameSchema::new(ProtocolKind::Broadcast).tag(&bcast),
            Some("bcast:echo")
        );
        let none_echo = mpca_wire::to_bytes(&BroadcastMsg::Echo(None));
        assert_eq!(
            FrameSchema::new(ProtocolKind::Broadcast).tag(&none_echo),
            Some("bcast:echo")
        );
        let sum = mpca_wire::to_bytes(&99u64);
        let schema = FrameSchema::new(ProtocolKind::UncheckedSum);
        assert_eq!(schema.tag(&sum), Some("sum:value"));
        let tampered = schema.tamper(&sum, "sum:value", "value").unwrap();
        let v: u64 = mpca_wire::from_bytes(&tampered).unwrap();
        assert_ne!(v, 99);
    }
}
