//! All-to-All Broadcast with abort (Simultaneous Broadcast, `F_SB`).
//!
//! Two implementations are provided:
//!
//! * [`NaiveAllToAllParty`] — the Goldwasser–Lindell baseline (§2.1): `n`
//!   parallel single-source broadcasts, where the verification step echoes
//!   every received input to every other party. Total communication
//!   `O(n³·ℓ)` bits.
//! * [`SuccinctAllToAllParty`] — the paper's improvement (§2.1, Remark 8):
//!   the verification step is replaced by pairwise **succinct equality
//!   tests** over the concatenated view, `O(λ log n)` bits per edge, for
//!   `Õ(n²·(ℓ + λ))` bits in total.
//!
//! Both guarantee: every honest party either outputs a view that agrees with
//! every other non-aborting honest party's view, or aborts.

use std::collections::BTreeMap;

use mpca_crypto::fingerprint::{EqualityChallenge, EqualityResponse};
use mpca_crypto::Prg;
use mpca_net::{AbortReason, Envelope, Milestone, PartyCtx, PartyId, PartyLogic, Payload, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::equality::PairwiseEquality;

/// Rounds taken by the naive protocol.
pub const NAIVE_ROUNDS: usize = 3;
/// Rounds taken by the succinct protocol.
pub const SUCCINCT_ROUNDS: usize = 4;

/// The common output type: each party's view of everyone's input.
///
/// Parties that never delivered an input (e.g. silent corrupted parties) are
/// absent from the map.
pub type View = BTreeMap<PartyId, Vec<u8>>;

/// Canonically encodes a view for equality testing.
pub fn encode_view(view: &View) -> Vec<u8> {
    // O(n·ℓ) per call and called by every party — the all-to-all hot path
    // the metrics plane profiles (inert span unless enabled).
    let _span = mpca_metrics::span("core.all_to_all.encode_view");
    mpca_wire::to_bytes(view)
}

// ---------------------------------------------------------------------------
// Naive GL baseline
// ---------------------------------------------------------------------------

/// Wire messages of the naive protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveMsg {
    /// Round 0: this party's own input.
    Input(Vec<u8>),
    /// Round 1: echo of the full received view.
    Echo(View),
}

impl Encode for NaiveMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            NaiveMsg::Input(x) => {
                w.put_u8(0);
                w.put_len_prefixed(x);
            }
            NaiveMsg::Echo(view) => {
                w.put_u8(1);
                view.encode(w);
            }
        }
    }
}

impl Decode for NaiveMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(NaiveMsg::Input(r.get_len_prefixed()?.to_vec())),
            1 => Ok(NaiveMsg::Echo(View::decode(r)?)),
            other => Err(WireError::InvalidDiscriminant {
                ty: "NaiveMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of the naive (GL) all-to-all broadcast with abort.
#[derive(Debug)]
pub struct NaiveAllToAllParty {
    id: PartyId,
    n: usize,
    input: Vec<u8>,
    view: View,
}

impl NaiveAllToAllParty {
    /// Creates a party holding `input`.
    pub fn new(id: PartyId, n: usize, input: Vec<u8>) -> Self {
        Self {
            id,
            n,
            input,
            view: View::new(),
        }
    }

    fn others(&self) -> Vec<PartyId> {
        PartyId::all(self.n).filter(|p| *p != self.id).collect()
    }
}

impl PartyLogic for NaiveAllToAllParty {
    type Output = View;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(&mut self, round: usize, incoming: &[Envelope], ctx: &mut PartyCtx) -> Step<View> {
        match round {
            0 => {
                self.view.insert(self.id, self.input.clone());
                let input = Payload::encode(&NaiveMsg::Input(self.input.clone()));
                ctx.send_payload_to_all(self.others(), &input);
                ctx.milestone(Milestone::SharesDistributed);
                Step::Continue
            }
            1 => {
                for envelope in incoming {
                    match envelope.decode::<NaiveMsg>() {
                        Ok(NaiveMsg::Input(x)) => {
                            if self.view.insert(envelope.from, x).is_some() {
                                return Step::Abort(AbortReason::OverReceipt(format!(
                                    "two inputs from {}",
                                    envelope.from
                                )));
                            }
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected Input".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                // The O(n·ℓ)-byte echo is the dominant message of the naive
                // baseline; materialise it once for all n − 1 recipients.
                ctx.milestone(Milestone::VerificationStart);
                let echo = Payload::encode(&NaiveMsg::Echo(self.view.clone()));
                ctx.send_payload_to_all(self.others(), &echo);
                Step::Continue
            }
            2 => {
                for envelope in incoming {
                    let echoed = match envelope.decode::<NaiveMsg>() {
                        Ok(NaiveMsg::Echo(view)) => view,
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected Echo".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    };
                    for (source, value) in echoed {
                        // A party's claim about its own input is authoritative
                        // only on the direct channel; differing echoes about
                        // any source are equivocation evidence.
                        if let Some(existing) = self.view.get(&source) {
                            if *existing != value {
                                return Step::Abort(AbortReason::Equivocation(format!(
                                    "{} echoed a conflicting input for {source}",
                                    envelope.from
                                )));
                            }
                        }
                    }
                }
                Step::Output(std::mem::take(&mut self.view))
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "naive all-to-all ran past its rounds".into(),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Succinct variant
// ---------------------------------------------------------------------------

/// Wire messages of the succinct protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuccinctMsg {
    /// Round 0: this party's own input.
    Input(Vec<u8>),
    /// Round 1: an equality challenge over the encoded view.
    Challenge(EqualityChallenge),
    /// Round 2: the response bit.
    Response(EqualityResponse),
}

impl Encode for SuccinctMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            SuccinctMsg::Input(x) => {
                w.put_u8(0);
                w.put_len_prefixed(x);
            }
            SuccinctMsg::Challenge(c) => {
                w.put_u8(1);
                c.encode(w);
            }
            SuccinctMsg::Response(r) => {
                w.put_u8(2);
                r.encode(w);
            }
        }
    }
}

impl Decode for SuccinctMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(SuccinctMsg::Input(r.get_len_prefixed()?.to_vec())),
            1 => Ok(SuccinctMsg::Challenge(EqualityChallenge::decode(r)?)),
            2 => Ok(SuccinctMsg::Response(EqualityResponse::decode(r)?)),
            other => Err(WireError::InvalidDiscriminant {
                ty: "SuccinctMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of the succinct all-to-all broadcast with abort.
#[derive(Debug)]
pub struct SuccinctAllToAllParty {
    id: PartyId,
    n: usize,
    input: Vec<u8>,
    prg: Prg,
    view: View,
    equality: PairwiseEquality,
}

impl SuccinctAllToAllParty {
    /// Creates a party holding `input`; `prg` supplies the equality-test
    /// randomness.
    pub fn new(id: PartyId, n: usize, lambda: u32, input: Vec<u8>, prg: Prg) -> Self {
        Self {
            id,
            n,
            input,
            prg,
            view: View::new(),
            equality: PairwiseEquality::new(id, PartyId::all(n), lambda),
        }
    }

    fn others(&self) -> Vec<PartyId> {
        PartyId::all(self.n).filter(|p| *p != self.id).collect()
    }
}

impl PartyLogic for SuccinctAllToAllParty {
    type Output = View;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(&mut self, round: usize, incoming: &[Envelope], ctx: &mut PartyCtx) -> Step<View> {
        match round {
            0 => {
                self.view.insert(self.id, self.input.clone());
                let input = Payload::encode(&SuccinctMsg::Input(self.input.clone()));
                ctx.send_payload_to_all(self.others(), &input);
                ctx.milestone(Milestone::SharesDistributed);
                Step::Continue
            }
            1 => {
                for envelope in incoming {
                    match envelope.decode::<SuccinctMsg>() {
                        Ok(SuccinctMsg::Input(x)) => {
                            if self.view.insert(envelope.from, x).is_some() {
                                return Step::Abort(AbortReason::OverReceipt(format!(
                                    "two inputs from {}",
                                    envelope.from
                                )));
                            }
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected Input".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                let encoded = encode_view(&self.view);
                ctx.milestone(Milestone::VerificationStart);
                for (peer, challenge) in self.equality.build_challenges(&encoded, &mut self.prg) {
                    ctx.send_msg(peer, &SuccinctMsg::Challenge(challenge));
                }
                Step::Continue
            }
            2 => {
                let encoded = encode_view(&self.view);
                for envelope in incoming {
                    match envelope.decode::<SuccinctMsg>() {
                        Ok(SuccinctMsg::Challenge(challenge)) => {
                            if envelope.from >= self.id {
                                return Step::Abort(AbortReason::Malformed(
                                    "challenge from a higher id".into(),
                                ));
                            }
                            let response = self.equality.respond(&challenge, &encoded);
                            ctx.send_msg(envelope.from, &SuccinctMsg::Response(response));
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected Challenge".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                Step::Continue
            }
            3 => {
                for envelope in incoming {
                    match envelope.decode::<SuccinctMsg>() {
                        Ok(SuccinctMsg::Response(response)) => {
                            self.equality.absorb_response(&response);
                        }
                        Ok(_) => {
                            return Step::Abort(AbortReason::Malformed("expected Response".into()))
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                if self.equality.failed() {
                    return Step::Abort(AbortReason::EqualityTestFailed(
                        "view differs from a peer's view".into(),
                    ));
                }
                Step::Output(std::mem::take(&mut self.view))
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "succinct all-to-all ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest naive parties for inputs `inputs[i]`, skipping corrupted
/// ids.
pub fn naive_parties(
    inputs: &[Vec<u8>],
    corrupted: &std::collections::BTreeSet<PartyId>,
) -> Vec<NaiveAllToAllParty> {
    let n = inputs.len();
    PartyId::all(n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| NaiveAllToAllParty::new(id, n, inputs[id.index()].clone()))
        .collect()
}

/// Builds the honest succinct parties for inputs `inputs[i]`, skipping
/// corrupted ids. Per-party randomness is derived from `seed`.
pub fn succinct_parties(
    inputs: &[Vec<u8>],
    lambda: u32,
    seed: &[u8],
    corrupted: &std::collections::BTreeSet<PartyId>,
) -> Vec<SuccinctAllToAllParty> {
    let n = inputs.len();
    let base = Prg::from_seed_bytes(seed);
    PartyId::all(n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            SuccinctAllToAllParty::new(
                id,
                n,
                lambda,
                inputs[id.index()].clone(),
                base.derive_indexed(b"succinct-a2a", id.index() as u64),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    use mpca_net::{ProxyAdversary, SimConfig, Simulator};

    fn inputs(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8; len]).collect()
    }

    fn expected_view(inputs: &[Vec<u8>]) -> View {
        inputs
            .iter()
            .enumerate()
            .map(|(i, x)| (PartyId(i), x.clone()))
            .collect()
    }

    #[test]
    fn naive_all_honest() {
        let n = 5;
        let inputs = inputs(n, 4);
        let parties = naive_parties(&inputs, &BTreeSet::new());
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        assert_eq!(result.unanimous_output(), Some(&expected_view(&inputs)));
        assert_eq!(result.rounds, NAIVE_ROUNDS);
    }

    #[test]
    fn succinct_all_honest() {
        let n = 5;
        let inputs = inputs(n, 4);
        let parties = succinct_parties(&inputs, 24, b"test", &BTreeSet::new());
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        assert_eq!(result.unanimous_output(), Some(&expected_view(&inputs)));
        assert_eq!(result.rounds, SUCCINCT_ROUNDS);
    }

    #[test]
    fn succinct_is_cheaper_than_naive_for_moderate_inputs() {
        let n = 12;
        let inputs = inputs(n, 64);
        let naive = Simulator::all_honest(n, naive_parties(&inputs, &BTreeSet::new()))
            .unwrap()
            .run()
            .unwrap();
        let succinct = Simulator::all_honest(
            n,
            succinct_parties(&inputs, 24, b"cheaper", &BTreeSet::new()),
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            succinct.honest_bits() < naive.honest_bits() / 2,
            "succinct {} bits vs naive {} bits",
            succinct.honest_bits(),
            naive.honest_bits()
        );
    }

    #[test]
    fn equivocating_input_aborts_both_variants() {
        let n = 6;
        let corrupted: BTreeSet<PartyId> = [PartyId(2)].into_iter().collect();
        let all_inputs = inputs(n, 8);

        // Naive.
        let honest = naive_parties(&all_inputs, &corrupted);
        let adversary = ProxyAdversary::new(
            vec![NaiveAllToAllParty::new(
                PartyId(2),
                n,
                all_inputs[2].clone(),
            )],
            n,
            |round, envelope| {
                let mut out = envelope.clone();
                if round == 0 && envelope.to.index() < 3 {
                    out.payload = Payload::encode(&NaiveMsg::Input(b"evil".to_vec()));
                }
                vec![out]
            },
        );
        let result = Simulator::new(n, honest, Box::new(adversary), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(result.any_abort(), "naive variant must detect equivocation");
        let views: Vec<&View> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .collect();
        for window in views.windows(2) {
            assert_eq!(window[0], window[1], "non-aborting honest views agree");
        }

        // Succinct.
        let honest = succinct_parties(&all_inputs, 24, b"equiv", &corrupted);
        let adversary = ProxyAdversary::new(
            vec![SuccinctAllToAllParty::new(
                PartyId(2),
                n,
                24,
                all_inputs[2].clone(),
                Prg::from_seed_bytes(b"adv"),
            )],
            n,
            |round, envelope| {
                let mut out = envelope.clone();
                if round == 0 && envelope.to.index() < 3 {
                    out.payload = Payload::encode(&SuccinctMsg::Input(b"evil".to_vec()));
                }
                vec![out]
            },
        );
        let result = Simulator::new(n, honest, Box::new(adversary), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        assert!(
            result.any_abort(),
            "succinct variant must detect equivocation"
        );
        let views: Vec<&View> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .collect();
        for window in views.windows(2) {
            assert_eq!(window[0], window[1]);
        }
    }

    #[test]
    fn message_wire_round_trips() {
        let mut prg = Prg::from_seed_bytes(b"a2a-wire");
        let challenge = EqualityChallenge::new(&mut prg, 16, b"view");
        for msg in [
            SuccinctMsg::Input(vec![1, 2]),
            SuccinctMsg::Challenge(challenge),
            SuccinctMsg::Response(EqualityResponse { equal: false }),
        ] {
            let back: SuccinctMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
        let view: View = [(PartyId(0), vec![1u8])].into_iter().collect();
        for msg in [NaiveMsg::Input(vec![3]), NaiveMsg::Echo(view)] {
            let back: NaiveMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
