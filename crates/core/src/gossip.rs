//! Responsible gossip over the sparse routing network (Algorithm 6).
//!
//! Parties with a (non-null) input send `(source = me, value)` to their
//! neighbours; every party forwards each *new* rumour exactly once to all of
//! its neighbours. If a party ever hears two different values attributed to
//! the same source (an equivocation), it sends a warning to its neighbours
//! and aborts; warnings are themselves forwarded once before aborting.
//! Because the honest subgraph is connected (Claim 20), all honest parties
//! either end with identical views of the honest inputs or someone detects
//! an equivocation and the warning floods the honest subgraph (Claim 21).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use mpca_net::{AbortReason, Envelope, PartyCtx, PartyId, PartyLogic, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

/// The output: the rumours heard, keyed by source.
pub type GossipView = BTreeMap<PartyId, Vec<u8>>;

/// Wire messages of the gossip protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMsg {
    /// A rumour: "`source`'s input is `value`".
    Rumor {
        /// The party the rumour is about.
        source: PartyId,
        /// The claimed input value.
        value: Vec<u8>,
    },
    /// An equivocation warning: abort and tell your neighbours.
    Warning,
}

impl Encode for GossipMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            GossipMsg::Rumor { source, value } => {
                w.put_u8(0);
                source.encode(w);
                w.put_len_prefixed(value);
            }
            GossipMsg::Warning => w.put_u8(1),
        }
    }
}

impl Decode for GossipMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(GossipMsg::Rumor {
                source: PartyId::decode(r)?,
                value: r.get_len_prefixed()?.to_vec(),
            }),
            1 => Ok(GossipMsg::Warning),
            other => Err(WireError::InvalidDiscriminant {
                ty: "GossipMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of the gossip protocol.
///
/// The number of forwarding rounds is fixed up front (see
/// [`ProtocolParams::gossip_rounds`](crate::params::ProtocolParams::gossip_rounds));
/// rumours that have not arrived by then are simply absent from the view.
#[derive(Debug)]
pub struct GossipParty {
    id: PartyId,
    neighbors: BTreeSet<PartyId>,
    /// This party's own input (`None` = Null input, nothing to announce).
    input: Option<Vec<u8>>,
    total_rounds: usize,
    view: GossipView,
    /// Sources whose rumour has already been forwarded.
    forwarded: BTreeSet<PartyId>,
    /// Set when an equivocation was detected; the warning is sent and the
    /// party aborts at the end of the round.
    warned: bool,
}

impl GossipParty {
    /// Creates a gossip party over the given neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics if `total_rounds < 2`.
    pub fn new(
        id: PartyId,
        neighbors: BTreeSet<PartyId>,
        input: Option<Vec<u8>>,
        total_rounds: usize,
    ) -> Self {
        assert!(total_rounds >= 2, "gossip needs at least two rounds");
        Self {
            id,
            neighbors,
            input,
            total_rounds,
            view: GossipView::new(),
            forwarded: BTreeSet::new(),
            warned: false,
        }
    }

    fn broadcast_to_neighbors(&self, ctx: &mut PartyCtx, msg: &GossipMsg) {
        for peer in &self.neighbors {
            ctx.send_msg(*peer, msg);
        }
    }

    /// Handles a rumour; returns `false` if an equivocation was detected.
    fn absorb_rumor(&mut self, source: PartyId, value: Vec<u8>, ctx: &mut PartyCtx) -> bool {
        match self.view.get(&source) {
            Some(existing) if *existing != value => false,
            Some(_) => true,
            None => {
                self.view.insert(source, value.clone());
                if self.forwarded.insert(source) {
                    self.broadcast_to_neighbors(ctx, &GossipMsg::Rumor { source, value });
                }
                true
            }
        }
    }
}

impl PartyLogic for GossipParty {
    type Output = GossipView;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<GossipView> {
        if round == 0 {
            if let Some(value) = self.input.clone() {
                self.view.insert(self.id, value.clone());
                self.forwarded.insert(self.id);
                self.broadcast_to_neighbors(
                    ctx,
                    &GossipMsg::Rumor {
                        source: self.id,
                        value,
                    },
                );
            }
            return Step::Continue;
        }
        if round >= self.total_rounds {
            return Step::Abort(AbortReason::BoundViolated(
                "gossip ran past its rounds".into(),
            ));
        }

        for envelope in incoming {
            if !self.neighbors.contains(&envelope.from) {
                return Step::Abort(AbortReason::OverReceipt(format!(
                    "message from non-neighbour {}",
                    envelope.from
                )));
            }
            match envelope.decode::<GossipMsg>() {
                Ok(GossipMsg::Rumor { source, value }) => {
                    if !self.absorb_rumor(source, value, ctx) {
                        self.warned = true;
                    }
                }
                Ok(GossipMsg::Warning) => {
                    self.warned = true;
                }
                Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
            }
        }
        if self.warned {
            self.broadcast_to_neighbors(ctx, &GossipMsg::Warning);
            return Step::Abort(AbortReason::Equivocation(
                "conflicting rumours observed (or warning received)".into(),
            ));
        }
        if round + 1 == self.total_rounds {
            Step::Output(std::mem::take(&mut self.view))
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use mpca_net::{Adversary, AdversaryCtx, SimConfig, Simulator};

    use crate::params::ProtocolParams;
    use crate::sparse::{sparse_parties, Neighborhood};

    /// Builds a routing graph by running SparseNetwork honestly, then returns
    /// per-party neighbourhoods.
    fn routing_graph(params: &ProtocolParams, seed: &[u8]) -> BTreeMap<PartyId, BTreeSet<PartyId>> {
        let parties = sparse_parties(params, seed, &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        result
            .outcomes
            .iter()
            .map(|(id, o)| {
                let Neighborhood { neighbors } = o.output().unwrap().clone();
                (*id, neighbors)
            })
            .collect()
    }

    fn gossip_parties(
        graph: &BTreeMap<PartyId, BTreeSet<PartyId>>,
        inputs: &BTreeMap<PartyId, Vec<u8>>,
        rounds: usize,
        corrupted: &BTreeSet<PartyId>,
    ) -> Vec<GossipParty> {
        graph
            .iter()
            .filter(|(id, _)| !corrupted.contains(id))
            .map(|(id, neighbors)| {
                GossipParty::new(*id, neighbors.clone(), inputs.get(id).cloned(), rounds)
            })
            .collect()
    }

    #[test]
    fn all_honest_gossip_delivers_every_input() {
        let params = ProtocolParams::new(48, 24);
        let graph = routing_graph(&params, b"gossip-graph");
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![id.index() as u8; 3]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        let expected: GossipView = inputs.clone();
        assert_eq!(result.unanimous_output(), Some(&expected));
    }

    #[test]
    fn null_inputs_are_simply_absent() {
        let params = ProtocolParams::new(32, 16);
        let graph = routing_graph(&params, b"gossip-null");
        // Only even parties have inputs (mirrors Algorithm 7's usage where
        // only self-elected parties announce).
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .filter(|id| id.index() % 2 == 0)
            .map(|id| (id, vec![id.index() as u8]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.unanimous_output(), Some(&inputs));
    }

    #[test]
    fn locality_is_bounded_by_the_graph_degree() {
        let params = ProtocolParams::new(64, 32);
        let graph = routing_graph(&params, b"gossip-locality");
        let max_degree = graph.values().map(BTreeSet::len).max().unwrap();
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![1u8, 2, 3, 4]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            result.honest_locality() <= max_degree,
            "gossip locality {} exceeds graph degree {max_degree}",
            result.honest_locality()
        );
        assert!(
            result.honest_locality() < params.n - 1,
            "should not be a clique"
        );
    }

    #[test]
    fn equivocating_source_triggers_warnings_and_aborts() {
        let params = ProtocolParams::new(24, 20);
        let graph = routing_graph(&params, b"gossip-equiv");
        let corrupted: BTreeSet<PartyId> = [PartyId(0)].into_iter().collect();
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![id.index() as u8]))
            .collect();

        /// The corrupted source tells half its neighbours one value and the
        /// other half a different value.
        struct Equivocator {
            corrupted: BTreeSet<PartyId>,
            neighbors: BTreeSet<PartyId>,
        }
        impl Adversary for Equivocator {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                round: usize,
                _delivered: &BTreeMap<PartyId, Vec<Envelope>>,
                ctx: &mut AdversaryCtx,
            ) {
                if round == 0 {
                    for (i, peer) in self.neighbors.iter().enumerate() {
                        let value = if i % 2 == 0 { vec![0xAA] } else { vec![0xBB] };
                        ctx.send_msg_as(
                            PartyId(0),
                            *peer,
                            &GossipMsg::Rumor {
                                source: PartyId(0),
                                value,
                            },
                        );
                    }
                }
            }
        }
        let adversary = Equivocator {
            corrupted: corrupted.clone(),
            neighbors: graph[&PartyId(0)].clone(),
        };
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &corrupted);
        let result = Simulator::new(params.n, parties, Box::new(adversary), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // The two conflicting rumours spread through the connected honest
        // subgraph, so some honest party observes both and the warning
        // cascades: every honest party must abort (none outputs a view that
        // silently contains one of the two lies as truth *and* differs from
        // another honest party's view).
        let views: Vec<&GossipView> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .collect();
        for window in views.windows(2) {
            assert_eq!(window[0], window[1], "non-aborting views must agree");
        }
        assert!(
            result.any_abort(),
            "equivocation must be detected somewhere"
        );
    }

    #[test]
    fn message_wire_round_trip() {
        for msg in [
            GossipMsg::Rumor {
                source: PartyId(7),
                value: vec![1, 2, 3],
            },
            GossipMsg::Warning,
        ] {
            let back: GossipMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }
}
