//! Responsible gossip over the sparse routing network (Algorithm 6).
//!
//! Parties with a (non-null) input send `(source = me, value)` to their
//! neighbours; every party forwards each *new* rumour exactly once to all of
//! its neighbours. If a party ever hears two different values attributed to
//! the same source (an equivocation), it sends a warning to its neighbours
//! and aborts; warnings are themselves forwarded once before aborting.
//! Because the honest subgraph is connected (Claim 20), all honest parties
//! either end with identical views of the honest inputs or someone detects
//! an equivocation and the warning floods the honest subgraph (Claim 21).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use mpca_net::{AbortReason, Envelope, PartyCtx, PartyId, PartyLogic, Payload, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

/// The output: the rumours heard, keyed by source.
///
/// Values are [`Payload`] windows; for rumours received from a neighbour the
/// window points into the inbound envelope's buffer (zero-copy receive).
pub type GossipView = BTreeMap<PartyId, Payload>;

/// Wire messages of the gossip protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipMsg {
    /// A rumour: "`source`'s input is `value`".
    Rumor {
        /// The party the rumour is about.
        source: PartyId,
        /// The claimed input value.
        value: Payload,
    },
    /// An equivocation warning: abort and tell your neighbours.
    Warning,
}

impl Encode for GossipMsg {
    fn encode(&self, w: &mut Writer) {
        match self {
            GossipMsg::Rumor { source, value } => {
                w.put_u8(0);
                source.encode(w);
                w.put_len_prefixed(value);
            }
            GossipMsg::Warning => w.put_u8(1),
        }
    }
}

impl Decode for GossipMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(GossipMsg::Rumor {
                source: PartyId::decode(r)?,
                value: Payload::decode(r)?,
            }),
            1 => Ok(GossipMsg::Warning),
            other => Err(WireError::InvalidDiscriminant {
                ty: "GossipMsg",
                value: u64::from(other),
            }),
        }
    }
}

impl GossipMsg {
    /// Decodes a gossip message from an envelope **without copying**: a
    /// rumour's value is returned as a subslice of the envelope's shared
    /// payload buffer rather than a fresh allocation.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`WireError`] for malformed payloads, exactly
    /// like [`Envelope::decode`].
    pub fn decode_shared(envelope: &Envelope) -> Result<Self, WireError> {
        let payload = &envelope.payload;
        let mut r = Reader::new(payload);
        // Only the rumour arm benefits from subslicing (its value is the one
        // large field); every other variant delegates to the canonical
        // `Decode` impl so the discriminant dispatch lives in one place.
        if r.get_u8()? == 0 {
            let source = PartyId::decode(&mut r)?;
            let value = payload.read_len_prefixed(&mut r)?;
            r.finish()?;
            Ok(GossipMsg::Rumor { source, value })
        } else {
            envelope.decode()
        }
    }
}

/// One party of the gossip protocol.
///
/// The number of forwarding rounds is fixed up front (see
/// [`ProtocolParams::gossip_rounds`](crate::params::ProtocolParams::gossip_rounds));
/// rumours that have not arrived by then are simply absent from the view.
#[derive(Debug)]
pub struct GossipParty {
    id: PartyId,
    neighbors: BTreeSet<PartyId>,
    /// This party's own input (`None` = Null input, nothing to announce).
    input: Option<Payload>,
    total_rounds: usize,
    view: GossipView,
    /// Sources whose rumour has already been forwarded.
    forwarded: BTreeSet<PartyId>,
    /// Set when an equivocation was detected; the warning is sent and the
    /// party aborts at the end of the round.
    warned: bool,
}

impl GossipParty {
    /// Creates a gossip party over the given neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics if `total_rounds < 2`.
    pub fn new(
        id: PartyId,
        neighbors: BTreeSet<PartyId>,
        input: Option<Payload>,
        total_rounds: usize,
    ) -> Self {
        assert!(total_rounds >= 2, "gossip needs at least two rounds");
        Self {
            id,
            neighbors,
            input,
            total_rounds,
            view: GossipView::new(),
            forwarded: BTreeSet::new(),
            warned: false,
        }
    }

    /// Sends one already-materialised message buffer to every neighbour
    /// (encode once, O(1) share per edge).
    fn broadcast_to_neighbors(&self, ctx: &mut PartyCtx, payload: &Payload) {
        ctx.send_payload_to_all(self.neighbors.iter().copied(), payload);
    }

    /// Handles a rumour; returns `false` if an equivocation was detected.
    ///
    /// `raw` is the inbound envelope's full message buffer. A forwarded
    /// rumour is byte-identical to the received one, so the relay shares
    /// `raw` with every neighbour instead of re-encoding — the zero-copy
    /// relay path. Charged bits are unchanged: the shared buffer has exactly
    /// the length the re-encoded message would have.
    fn absorb_rumor(
        &mut self,
        source: PartyId,
        value: Payload,
        raw: &Payload,
        ctx: &mut PartyCtx,
    ) -> bool {
        match self.view.get(&source) {
            Some(existing) if *existing != value => false,
            Some(_) => true,
            None => {
                self.view.insert(source, value);
                if self.forwarded.insert(source) {
                    self.broadcast_to_neighbors(ctx, raw);
                }
                true
            }
        }
    }
}

impl PartyLogic for GossipParty {
    type Output = GossipView;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<GossipView> {
        if round == 0 {
            if let Some(value) = self.input.clone() {
                // Materialise the announcement once; every neighbour's
                // envelope shares the same buffer.
                let announcement = Payload::encode(&GossipMsg::Rumor {
                    source: self.id,
                    value: value.clone(),
                });
                self.view.insert(self.id, value);
                self.forwarded.insert(self.id);
                self.broadcast_to_neighbors(ctx, &announcement);
            }
            return Step::Continue;
        }
        if round >= self.total_rounds {
            return Step::Abort(AbortReason::BoundViolated(
                "gossip ran past its rounds".into(),
            ));
        }

        for envelope in incoming {
            if !self.neighbors.contains(&envelope.from) {
                return Step::Abort(AbortReason::OverReceipt(format!(
                    "message from non-neighbour {}",
                    envelope.from
                )));
            }
            match GossipMsg::decode_shared(envelope) {
                Ok(GossipMsg::Rumor { source, value }) => {
                    if !self.absorb_rumor(source, value, &envelope.payload, ctx) {
                        self.warned = true;
                    }
                }
                Ok(GossipMsg::Warning) => {
                    self.warned = true;
                }
                Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
            }
        }
        if self.warned {
            self.broadcast_to_neighbors(ctx, &Payload::encode(&GossipMsg::Warning));
            return Step::Abort(AbortReason::Equivocation(
                "conflicting rumours observed (or warning received)".into(),
            ));
        }
        if round + 1 == self.total_rounds {
            Step::Output(std::mem::take(&mut self.view))
        } else {
            Step::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use mpca_net::{Adversary, AdversaryCtx, SimConfig, Simulator};

    use crate::params::ProtocolParams;
    use crate::sparse::{sparse_parties, Neighborhood};

    /// Builds a routing graph by running SparseNetwork honestly, then returns
    /// per-party neighbourhoods.
    fn routing_graph(params: &ProtocolParams, seed: &[u8]) -> BTreeMap<PartyId, BTreeSet<PartyId>> {
        let parties = sparse_parties(params, seed, &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        result
            .outcomes
            .iter()
            .map(|(id, o)| {
                let Neighborhood { neighbors } = o.output().unwrap().clone();
                (*id, neighbors)
            })
            .collect()
    }

    fn gossip_parties(
        graph: &BTreeMap<PartyId, BTreeSet<PartyId>>,
        inputs: &BTreeMap<PartyId, Vec<u8>>,
        rounds: usize,
        corrupted: &BTreeSet<PartyId>,
    ) -> Vec<GossipParty> {
        graph
            .iter()
            .filter(|(id, _)| !corrupted.contains(id))
            .map(|(id, neighbors)| {
                GossipParty::new(
                    *id,
                    neighbors.clone(),
                    inputs.get(id).cloned().map(Payload::from),
                    rounds,
                )
            })
            .collect()
    }

    fn as_view(inputs: &BTreeMap<PartyId, Vec<u8>>) -> GossipView {
        inputs
            .iter()
            .map(|(id, value)| (*id, Payload::from(value.clone())))
            .collect()
    }

    #[test]
    fn all_honest_gossip_delivers_every_input() {
        let params = ProtocolParams::new(48, 24);
        let graph = routing_graph(&params, b"gossip-graph");
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![id.index() as u8; 3]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        assert_eq!(result.unanimous_output(), Some(&as_view(&inputs)));
    }

    #[test]
    fn null_inputs_are_simply_absent() {
        let params = ProtocolParams::new(32, 16);
        let graph = routing_graph(&params, b"gossip-null");
        // Only even parties have inputs (mirrors Algorithm 7's usage where
        // only self-elected parties announce).
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .filter(|id| id.index() % 2 == 0)
            .map(|id| (id, vec![id.index() as u8]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.unanimous_output(), Some(&as_view(&inputs)));
    }

    #[test]
    fn locality_is_bounded_by_the_graph_degree() {
        let params = ProtocolParams::new(64, 32);
        let graph = routing_graph(&params, b"gossip-locality");
        let max_degree = graph.values().map(BTreeSet::len).max().unwrap();
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![1u8, 2, 3, 4]))
            .collect();
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(
            result.honest_locality() <= max_degree,
            "gossip locality {} exceeds graph degree {max_degree}",
            result.honest_locality()
        );
        assert!(
            result.honest_locality() < params.n - 1,
            "should not be a clique"
        );
    }

    #[test]
    fn equivocating_source_triggers_warnings_and_aborts() {
        let params = ProtocolParams::new(24, 20);
        let graph = routing_graph(&params, b"gossip-equiv");
        let corrupted: BTreeSet<PartyId> = [PartyId(0)].into_iter().collect();
        let inputs: BTreeMap<PartyId, Vec<u8>> = PartyId::all(params.n)
            .map(|id| (id, vec![id.index() as u8]))
            .collect();

        /// The corrupted source tells half its neighbours one value and the
        /// other half a different value.
        struct Equivocator {
            corrupted: BTreeSet<PartyId>,
            neighbors: BTreeSet<PartyId>,
        }
        impl Adversary for Equivocator {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                round: usize,
                _delivered: &BTreeMap<PartyId, Vec<Envelope>>,
                ctx: &mut AdversaryCtx,
            ) {
                if round == 0 {
                    for (i, peer) in self.neighbors.iter().enumerate() {
                        let value = if i % 2 == 0 { vec![0xAA] } else { vec![0xBB] };
                        ctx.send_msg_as(
                            PartyId(0),
                            *peer,
                            &GossipMsg::Rumor {
                                source: PartyId(0),
                                value: value.into(),
                            },
                        );
                    }
                }
            }
        }
        let adversary = Equivocator {
            corrupted: corrupted.clone(),
            neighbors: graph[&PartyId(0)].clone(),
        };
        let parties = gossip_parties(&graph, &inputs, params.gossip_rounds(), &corrupted);
        let result = Simulator::new(params.n, parties, Box::new(adversary), SimConfig::default())
            .unwrap()
            .run()
            .unwrap();
        // The two conflicting rumours spread through the connected honest
        // subgraph, so some honest party observes both and the warning
        // cascades: every honest party must abort (none outputs a view that
        // silently contains one of the two lies as truth *and* differs from
        // another honest party's view).
        let views: Vec<&GossipView> = result
            .outcomes
            .values()
            .filter_map(|o| o.output())
            .collect();
        for window in views.windows(2) {
            assert_eq!(window[0], window[1], "non-aborting views must agree");
        }
        assert!(
            result.any_abort(),
            "equivocation must be detected somewhere"
        );
    }

    #[test]
    fn message_wire_round_trip() {
        for msg in [
            GossipMsg::Rumor {
                source: PartyId(7),
                value: vec![1, 2, 3].into(),
            },
            GossipMsg::Warning,
        ] {
            let back: GossipMsg = mpca_wire::from_bytes(&mpca_wire::to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
            // The zero-copy decode path agrees with the generic one.
            let envelope = mpca_net::Envelope::new(PartyId(7), PartyId(8), Payload::encode(&msg));
            assert_eq!(GossipMsg::decode_shared(&envelope).unwrap(), msg);
        }
    }

    #[test]
    fn relaying_rumors_shares_buffers_without_changing_charged_bits() {
        // A 3-party line 0 – 1 – 2: party 1 relays party 0's rumour to
        // party 2. The relayed envelope must share its buffer with the
        // inbound one (no re-encode, no copy), and the bits charged for the
        // relay hop must equal the bits charged for the original hop.
        let line: BTreeMap<PartyId, BTreeSet<PartyId>> = [
            (PartyId(0), [PartyId(1)].into_iter().collect()),
            (PartyId(1), [PartyId(0), PartyId(2)].into_iter().collect()),
            (PartyId(2), [PartyId(1)].into_iter().collect()),
        ]
        .into_iter()
        .collect();
        let inputs: BTreeMap<PartyId, Vec<u8>> =
            [(PartyId(0), vec![0xAB; 100])].into_iter().collect();
        let parties = gossip_parties(&line, &inputs, 4, &BTreeSet::new());
        let result = Simulator::all_honest(3, parties).unwrap().run().unwrap();
        assert!(!result.any_abort());
        assert_eq!(result.unanimous_output(), Some(&as_view(&inputs)));
        // P0 announces once to P1; P1 forwards once to each of its two
        // neighbours. Every hop carries the same encoding, so the relay
        // charges exactly 2× the original hop.
        let original = result.stats.bytes_sent_by_party(PartyId(0));
        let relayed = result.stats.bytes_sent_by_party(PartyId(1));
        assert!(original > 100, "rumour must carry the 100-byte value");
        assert_eq!(
            relayed,
            2 * original,
            "relaying must charge the same per-hop bits as the original send"
        );
    }
}
