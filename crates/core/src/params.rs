//! Protocol parameters and the quantities derived from them.

use mpca_crypto::lwe::LweParams;
use mpca_encfunc::Theorem9CostModel;

/// How the encrypted functionality is realised inside the committee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPath {
    /// Concrete threshold-LWE: distributed key generation, real Regev
    /// ciphertexts, homomorphic aggregation, threshold decryption. Available
    /// for linear functionalities whose inputs fit one plaintext chunk.
    Concrete,
    /// Hybrid model: the ideal functionality `F[PKE, f]` computes the result
    /// while committee members exchange Theorem 9-sized messages to account
    /// for the cost of realising it. Available for every functionality.
    Hybrid,
}

/// The `(n, h, λ, α)` parameters shared by every protocol in this crate,
/// plus the LWE parameter set used for encryption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    /// Total number of parties `n`.
    pub n: usize,
    /// Lower bound on the number of honest parties `h`.
    pub h: usize,
    /// Security parameter `λ` (drives equality-test soundness, committee
    /// over-sampling and Theorem 9 message sizes).
    pub lambda: u32,
    /// Over-sampling constant `α` from Algorithms 2, 5 and 7.
    pub alpha: f64,
    /// LWE parameters for the encryption scheme.
    pub lwe: LweParams,
}

impl ProtocolParams {
    /// Creates a parameter set with default `λ = 16`, `α = 2.0` and toy LWE
    /// parameters (suitable for large simulation sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `h` is not in `[1, n]`.
    pub fn new(n: usize, h: usize) -> Self {
        let params = Self {
            n,
            h,
            lambda: 16,
            alpha: 2.0,
            lwe: LweParams::toy(),
        };
        params.validate();
        params
    }

    /// Overrides the security parameter.
    pub fn with_lambda(mut self, lambda: u32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Overrides the over-sampling constant.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides the LWE parameters.
    pub fn with_lwe(mut self, lwe: LweParams) -> Self {
        self.lwe = lwe;
        self
    }

    /// Validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `h` is outside `[1, n]`, `α ≤ 0`, or the LWE
    /// parameters are inconsistent.
    pub fn validate(&self) {
        assert!(self.n >= 2, "need at least two parties");
        assert!(self.h >= 1 && self.h <= self.n, "h must be in [1, n]");
        assert!(self.alpha > 0.0, "alpha must be positive");
        assert!(self.lambda >= 1, "lambda must be positive");
        self.lwe.validate();
    }

    /// `log n` used throughout the derived quantities (natural logarithm,
    /// clamped below by 1 so tiny networks stay well-defined).
    pub fn log_n(&self) -> f64 {
        (self.n as f64).ln().max(1.0)
    }

    /// Committee-election probability `p = min(1, α·log n / h)`
    /// (Algorithm 2 step 1).
    pub fn election_probability(&self) -> f64 {
        (self.alpha * self.log_n() / self.h as f64).min(1.0)
    }

    /// The abort threshold on committee size, `2·p·n` (Algorithm 2 step 3).
    pub fn committee_bound(&self) -> usize {
        (2.0 * self.election_probability() * self.n as f64).ceil() as usize
    }

    /// Local committee-election probability `p = min(1, α·log n / √h)`
    /// (Algorithm 7 step 2).
    pub fn local_election_probability(&self) -> f64 {
        (self.alpha * self.log_n() / (self.h as f64).sqrt()).min(1.0)
    }

    /// The abort threshold on local committee size, `2·p·n`
    /// (Algorithm 7 step 4).
    pub fn local_committee_bound(&self) -> usize {
        (2.0 * self.local_election_probability() * self.n as f64).ceil() as usize
    }

    /// Out-degree of the sparse routing network,
    /// `d = α·(n/h)·log n` (Algorithm 5 step 1), clamped to `[1, n − 1]`.
    pub fn sparse_degree(&self) -> usize {
        let d = (self.alpha * self.n as f64 / self.h as f64 * self.log_n()).ceil() as usize;
        d.clamp(1, self.n - 1)
    }

    /// The abort threshold on in-degree (Algorithm 5 step 3).
    ///
    /// The paper uses `2·d` and argues a `n^{−Ω(α)}` failure probability,
    /// which holds once `d = α·(n/h)·log n` is large. At simulation scale
    /// `d` can be a single-digit number, where a Binomial(n, d/n) in-degree
    /// exceeds `2d` with non-negligible probability, so we add an additive
    /// `3·log n` slack; asymptotically the threshold is still `(2 + o(1))·d`.
    pub fn sparse_in_bound(&self) -> usize {
        2 * self.sparse_degree() + (3.0 * self.log_n()).ceil() as usize
    }

    /// Size of each committee member's cover set `S_c`, `n/√h`
    /// (Algorithm 8 step 3), clamped to `[1, n]`.
    pub fn cover_size(&self) -> usize {
        ((self.n as f64 / (self.h as f64).sqrt()).ceil() as usize).clamp(1, self.n)
    }

    /// Number of gossip forwarding rounds used by Algorithm 6.
    ///
    /// The honest subgraph of the routing network is connected with
    /// overwhelming probability (Claim 20), and any connected graph on at
    /// most `h` honest vertices has diameter at most `h − 1`; rumours
    /// therefore reach every honest party within `h` forwarding rounds. A
    /// tighter `O(log n)` bound holds w.h.p. for random graphs, but the
    /// conservative bound keeps correctness unconditional on the sampled
    /// topology.
    pub fn gossip_rounds(&self) -> usize {
        self.h.clamp(2, self.n)
    }

    /// The Theorem 9 cost model for a functionality of the given depth.
    pub fn cost_model(&self, depth: usize) -> Theorem9CostModel {
        Theorem9CostModel::new(self.lambda, depth as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities_scale_as_expected() {
        let base = ProtocolParams::new(256, 64);
        let more_honest = ProtocolParams::new(256, 256);
        // More honest parties → smaller committees and sparser networks.
        assert!(more_honest.election_probability() < base.election_probability());
        assert!(more_honest.sparse_degree() < base.sparse_degree());
        assert!(more_honest.local_election_probability() < base.local_election_probability());
        assert!(more_honest.cover_size() < base.cover_size());
        // Bounds are consistent.
        assert!(base.sparse_in_bound() >= 2 * base.sparse_degree());
        assert!(base.committee_bound() >= 1);
    }

    #[test]
    fn probabilities_are_clamped_to_one() {
        let params = ProtocolParams::new(16, 1);
        assert_eq!(params.election_probability(), 1.0);
        assert_eq!(params.local_election_probability(), 1.0);
        assert!(params.sparse_degree() <= 15);
    }

    #[test]
    fn builders_override_fields() {
        let params = ProtocolParams::new(8, 4)
            .with_lambda(32)
            .with_alpha(3.0)
            .with_lwe(LweParams::default_params());
        assert_eq!(params.lambda, 32);
        assert_eq!(params.alpha, 3.0);
        assert_eq!(params.lwe, LweParams::default_params());
        assert_eq!(params.cost_model(2).lambda, 32);
    }

    #[test]
    #[should_panic(expected = "h must be in [1, n]")]
    fn invalid_h_panics() {
        let _ = ProtocolParams::new(4, 5);
    }

    #[test]
    fn gossip_rounds_bounded_by_n() {
        let params = ProtocolParams::new(10, 10);
        assert!(params.gossip_rounds() <= 10);
        assert!(params.gossip_rounds() >= 2);
    }
}
