//! Establishing a sparse routing network (Algorithm 5, `SparseNetwork`).
//!
//! Each party samples `d = α·(n/h)·log n` random peers as outgoing
//! connections and notifies them; connections are bidirectional. A party
//! whose in-degree exceeds `2d` is (with overwhelming probability) being
//! targeted by the adversary and aborts — this is what keeps the final
//! degree, and therefore the locality, at `O(α·(n/h)·log n)` (Claim 20).
//! The honest subgraph is connected with probability `1 − n^{−Ω(α)}`.
//!
//! Note: step 3 of Algorithm 5 as printed in the paper reads "if
//! `d/2 ≤ |N_in| ≤ 2d`, output ⊥", which is inverted relative to the
//! surrounding prose and the proof of Claim 20 ("if any party detects too
//! many incoming connections … it aborts"). We implement the evident intent:
//! abort when `|N_in| > 2d`.

use std::collections::BTreeSet;

use mpca_crypto::Prg;
use mpca_net::{AbortReason, Envelope, PartyCtx, PartyId, PartyLogic, Payload, Step};
use mpca_wire::{Decode, Encode, Reader, WireError, Writer};

use crate::params::ProtocolParams;

/// Number of rounds the protocol takes.
pub const ROUNDS: usize = 2;

/// The output: this party's neighbourhood in the routing graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Neighborhood {
    /// Peers this party is connected to (outgoing ∪ incoming).
    pub neighbors: BTreeSet<PartyId>,
}

/// Wire message: a connection request ("you are one of my next hops").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectMsg;

impl Encode for ConnectMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(0);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for ConnectMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(ConnectMsg),
            other => Err(WireError::InvalidDiscriminant {
                ty: "ConnectMsg",
                value: u64::from(other),
            }),
        }
    }
}

/// One party of the sparse-network protocol.
#[derive(Debug)]
pub struct SparseNetworkParty {
    id: PartyId,
    params: ProtocolParams,
    prg: Prg,
    outgoing: BTreeSet<PartyId>,
}

impl SparseNetworkParty {
    /// Creates a party; `prg` supplies its private coins.
    pub fn new(id: PartyId, params: ProtocolParams, prg: Prg) -> Self {
        params.validate();
        Self {
            id,
            params,
            prg,
            outgoing: BTreeSet::new(),
        }
    }
}

impl PartyLogic for SparseNetworkParty {
    type Output = Neighborhood;

    fn id(&self) -> PartyId {
        self.id
    }

    fn on_round(
        &mut self,
        round: usize,
        incoming: &[Envelope],
        ctx: &mut PartyCtx,
    ) -> Step<Neighborhood> {
        match round {
            0 => {
                let degree = self.params.sparse_degree();
                // Sample d peers uniformly without replacement, excluding self.
                let mut candidates = self.prg.sample_subset(self.params.n - 1, degree);
                for c in candidates.iter_mut() {
                    if *c >= self.id.index() {
                        *c += 1;
                    }
                }
                self.outgoing = candidates.into_iter().map(PartyId).collect();
                let request = Payload::encode(&ConnectMsg);
                ctx.send_payload_to_all(self.outgoing.iter().copied(), &request);
                Step::Continue
            }
            1 => {
                let mut incoming_peers: BTreeSet<PartyId> = BTreeSet::new();
                for envelope in incoming {
                    match envelope.decode::<ConnectMsg>() {
                        Ok(ConnectMsg) => {
                            if !incoming_peers.insert(envelope.from) {
                                return Step::Abort(AbortReason::OverReceipt(format!(
                                    "duplicate connection request from {}",
                                    envelope.from
                                )));
                            }
                        }
                        Err(e) => return Step::Abort(AbortReason::Malformed(e.to_string())),
                    }
                }
                if incoming_peers.len() > self.params.sparse_in_bound() {
                    return Step::Abort(AbortReason::BoundViolated(format!(
                        "{} incoming connections exceed the 2d = {} bound",
                        incoming_peers.len(),
                        self.params.sparse_in_bound()
                    )));
                }
                let mut neighbors = std::mem::take(&mut self.outgoing);
                neighbors.extend(incoming_peers);
                neighbors.remove(&self.id);
                Step::Output(Neighborhood { neighbors })
            }
            _ => Step::Abort(AbortReason::BoundViolated(
                "sparse network ran past its rounds".into(),
            )),
        }
    }
}

/// Builds the honest parties of a sparse-network execution, deriving coins
/// from `seed` and skipping corrupted ids.
pub fn sparse_parties(
    params: &ProtocolParams,
    seed: &[u8],
    corrupted: &BTreeSet<PartyId>,
) -> Vec<SparseNetworkParty> {
    let base = Prg::from_seed_bytes(seed);
    PartyId::all(params.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| {
            SparseNetworkParty::new(
                id,
                *params,
                base.derive_indexed(b"sparse-network", id.index() as u64),
            )
        })
        .collect()
}

/// Checks whether the honest subgraph induced by `neighborhoods` is
/// connected (used by Claim 20 experiments and tests).
pub fn honest_subgraph_connected(
    neighborhoods: &std::collections::BTreeMap<PartyId, BTreeSet<PartyId>>,
) -> bool {
    let honest: BTreeSet<PartyId> = neighborhoods.keys().copied().collect();
    let Some(&start) = honest.iter().next() else {
        return true;
    };
    let mut visited: BTreeSet<PartyId> = [start].into_iter().collect();
    let mut stack = vec![start];
    while let Some(current) = stack.pop() {
        let Some(neighbors) = neighborhoods.get(&current) else {
            continue;
        };
        for peer in neighbors {
            if honest.contains(peer) && visited.insert(*peer) {
                stack.push(*peer);
            }
        }
    }
    visited.len() == honest.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use mpca_net::{Adversary, AdversaryCtx, SimConfig, Simulator};

    fn run_all_honest(
        params: &ProtocolParams,
        seed: &[u8],
    ) -> BTreeMap<PartyId, BTreeSet<PartyId>> {
        let parties = sparse_parties(params, seed, &BTreeSet::new());
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.any_abort());
        result
            .outcomes
            .iter()
            .map(|(id, o)| (*id, o.output().unwrap().neighbors.clone()))
            .collect()
    }

    #[test]
    fn degree_is_bounded_and_graph_is_connected() {
        let params = ProtocolParams::new(96, 32);
        let neighborhoods = run_all_honest(&params, b"sparse-1");
        let bound = params.sparse_degree() + params.sparse_in_bound();
        for (id, neighbors) in &neighborhoods {
            assert!(
                neighbors.len() <= bound,
                "{id} has degree {} > {bound}",
                neighbors.len()
            );
            assert!(!neighbors.contains(id));
        }
        assert!(honest_subgraph_connected(&neighborhoods));
    }

    #[test]
    fn adjacency_is_symmetric_for_honest_parties() {
        let params = ProtocolParams::new(40, 20);
        let neighborhoods = run_all_honest(&params, b"sparse-2");
        for (id, neighbors) in &neighborhoods {
            for peer in neighbors {
                assert!(
                    neighborhoods[peer].contains(id),
                    "edge {id} -> {peer} is not symmetric"
                );
            }
        }
    }

    #[test]
    fn degree_shrinks_as_h_grows() {
        let dense = ProtocolParams::new(128, 8);
        let sparse = ProtocolParams::new(128, 64);
        assert!(sparse.sparse_degree() < dense.sparse_degree());
        let neighborhoods = run_all_honest(&sparse, b"sparse-3");
        let max_degree = neighborhoods.values().map(BTreeSet::len).max().unwrap();
        assert!(max_degree <= sparse.sparse_degree() + sparse.sparse_in_bound());
    }

    #[test]
    fn targeted_flooding_causes_the_victim_to_abort() {
        // The adversary points every corrupted party's connections at P0.
        struct Target {
            corrupted: BTreeSet<PartyId>,
        }
        impl Adversary for Target {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                round: usize,
                _delivered: &BTreeMap<PartyId, Vec<Envelope>>,
                ctx: &mut AdversaryCtx,
            ) {
                if round == 0 {
                    for &from in &self.corrupted {
                        // Dozens of duplicate connection requests at P0.
                        for _ in 0..8 {
                            ctx.send_msg_as(from, PartyId(0), &ConnectMsg);
                        }
                    }
                }
            }
        }
        let params = ProtocolParams::new(24, 20).with_alpha(1.0);
        let corrupted: BTreeSet<PartyId> = (20..24).map(PartyId).collect();
        let honest = sparse_parties(&params, b"sparse-dos", &corrupted);
        let result = Simulator::new(
            params.n,
            honest,
            Box::new(Target {
                corrupted: corrupted.clone(),
            }),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        // P0 aborts (duplicate requests are already over-receipt evidence);
        // other honest parties are unaffected.
        assert!(result.outcome_of(PartyId(0)).unwrap().is_abort());
    }
}
