//! A combinator layer for building circuits: wires, multi-bit buses,
//! ripple-carry adders, comparators and multiplexers.

use crate::circuit::{Circuit, CircuitError, Gate, GateId};

/// A single wire (the output of a gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire(GateId);

/// A little-endian bundle of wires representing an unsigned integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bus {
    wires: Vec<Wire>,
}

impl Bus {
    /// The wires, least-significant bit first.
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.wires.len()
    }
}

/// An incremental circuit builder.
///
/// ```
/// use mpca_circuits::CircuitBuilder;
///
/// // f(x, y) = x + y over 8-bit inputs from two parties.
/// let mut b = CircuitBuilder::new();
/// let x = b.input_bus(8);
/// let y = b.input_bus(8);
/// let sum = b.add(&x, &y);
/// let circuit = b.finish_with_bus(&sum).unwrap();
/// assert_eq!(circuit.input_bits(), 16);
/// assert_eq!(circuit.output_bits(), 9);
/// ```
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    gates: Vec<Gate>,
    input_bits: usize,
    outputs: Vec<GateId>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, gate: Gate) -> Wire {
        self.gates.push(gate);
        Wire(GateId(self.gates.len() - 1))
    }

    /// Declares the next input bit.
    pub fn input(&mut self) -> Wire {
        let idx = self.input_bits;
        self.input_bits += 1;
        self.push(Gate::Input(idx))
    }

    /// Declares a bus of `width` consecutive input bits.
    pub fn input_bus(&mut self, width: usize) -> Bus {
        Bus {
            wires: (0..width).map(|_| self.input()).collect(),
        }
    }

    /// A constant bit.
    pub fn constant(&mut self, value: bool) -> Wire {
        self.push(Gate::Const(value))
    }

    /// A constant bus of the given width.
    pub fn constant_bus(&mut self, value: u64, width: usize) -> Bus {
        Bus {
            wires: (0..width)
                .map(|i| self.constant((value >> i) & 1 == 1))
                .collect(),
        }
    }

    /// `a XOR b`.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::Xor(a.0, b.0))
    }

    /// `a AND b`.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.push(Gate::And(a.0, b.0))
    }

    /// `NOT a`.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.push(Gate::Not(a.0))
    }

    /// `a OR b`.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        // a | b = (a ^ b) ^ (a & b)
        let x = self.xor(a, b);
        let y = self.and(a, b);
        self.xor(x, y)
    }

    /// Bitwise XOR of two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn xor_bus(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width(), "bus widths differ");
        Bus {
            wires: a
                .wires
                .iter()
                .zip(b.wires.iter())
                .map(|(&x, &y)| self.xor(x, y))
                .collect(),
        }
    }

    /// `selector ? a : b` for single wires.
    pub fn mux(&mut self, selector: Wire, a: Wire, b: Wire) -> Wire {
        // b ^ (selector & (a ^ b))
        let diff = self.xor(a, b);
        let gated = self.and(selector, diff);
        self.xor(b, gated)
    }

    /// `selector ? a : b` for equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_bus(&mut self, selector: Wire, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width(), "bus widths differ");
        Bus {
            wires: a
                .wires
                .iter()
                .zip(b.wires.iter())
                .map(|(&x, &y)| self.mux(selector, x, y))
                .collect(),
        }
    }

    /// Ripple-carry addition; the result is one bit wider than the inputs.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn add(&mut self, a: &Bus, b: &Bus) -> Bus {
        assert_eq!(a.width(), b.width(), "bus widths differ");
        let mut carry = self.constant(false);
        let mut wires = Vec::with_capacity(a.width() + 1);
        for (&x, &y) in a.wires.iter().zip(b.wires.iter()) {
            // sum = x ^ y ^ carry
            let xy = self.xor(x, y);
            let sum = self.xor(xy, carry);
            // carry' = (x & y) ^ (carry & (x ^ y))
            let xa = self.and(x, y);
            let cb = self.and(carry, xy);
            carry = self.xor(xa, cb);
            wires.push(sum);
        }
        wires.push(carry);
        Bus { wires }
    }

    /// Truncating addition modulo `2^width` (same width as the inputs).
    pub fn add_mod(&mut self, a: &Bus, b: &Bus) -> Bus {
        let mut sum = self.add(a, b);
        sum.wires.pop();
        sum
    }

    /// `a > b` (unsigned comparison), returning a single wire.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn greater_than(&mut self, a: &Bus, b: &Bus) -> Wire {
        assert_eq!(a.width(), b.width(), "bus widths differ");
        // Scan from least significant to most significant:
        // gt = (a_i & !b_i) | (gt & !(a_i ^ b_i))
        let mut gt = self.constant(false);
        for (&x, &y) in a.wires.iter().zip(b.wires.iter()) {
            let not_y = self.not(y);
            let x_gt_y = self.and(x, not_y);
            let eq = self.xor(x, y);
            let neq = eq;
            let not_neq = self.not(neq);
            let keep = self.and(gt, not_neq);
            gt = self.or(x_gt_y, keep);
        }
        gt
    }

    /// Bus equality, returning a single wire.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn equals(&mut self, a: &Bus, b: &Bus) -> Wire {
        assert_eq!(a.width(), b.width(), "bus widths differ");
        let mut acc = self.constant(true);
        for (&x, &y) in a.wires.iter().zip(b.wires.iter()) {
            let diff = self.xor(x, y);
            let same = self.not(diff);
            acc = self.and(acc, same);
        }
        acc
    }

    /// Element-wise maximum of two buses, plus a wire that is set when `a`
    /// was the strictly larger one.
    pub fn max(&mut self, a: &Bus, b: &Bus) -> (Bus, Wire) {
        let a_greater = self.greater_than(a, b);
        (self.mux_bus(a_greater, a, b), a_greater)
    }

    /// Zero-extends a single wire into a `width`-bit bus (the wire becomes
    /// the least-significant bit).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn bus_from_wire(&mut self, wire: Wire, width: usize) -> Bus {
        assert!(width >= 1, "bus width must be positive");
        let mut wires = vec![wire];
        for _ in 1..width {
            wires.push(self.constant(false));
        }
        Bus { wires }
    }

    /// Marks a single wire as the next output bit.
    pub fn output(&mut self, wire: Wire) {
        self.outputs.push(wire.0);
    }

    /// Marks a whole bus as output bits (LSB first).
    pub fn output_bus(&mut self, bus: &Bus) {
        for wire in &bus.wires {
            self.outputs.push(wire.0);
        }
    }

    /// Finishes the circuit with the outputs marked so far.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from validation (which cannot trigger for
    /// circuits built exclusively through this builder).
    pub fn finish(self) -> Result<Circuit, CircuitError> {
        Circuit::new(self.input_bits, self.gates, self.outputs)
    }

    /// Convenience: mark `bus` as the output and finish.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError`] from validation.
    pub fn finish_with_bus(mut self, bus: &Bus) -> Result<Circuit, CircuitError> {
        self.output_bus(bus);
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_bytes, bytes_to_bits};

    fn eval_u64(circuit: &Circuit, inputs: &[(u64, usize)]) -> u64 {
        let bits: Vec<bool> = inputs
            .iter()
            .flat_map(|(value, width)| (0..*width).map(move |i| (value >> i) & 1 == 1))
            .collect();
        let out = circuit.evaluate(&bits).unwrap();
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
    }

    #[test]
    fn adder_is_correct() {
        let mut b = CircuitBuilder::new();
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let sum = b.add(&x, &y);
        let circuit = b.finish_with_bus(&sum).unwrap();
        for (x, y) in [(0u64, 0u64), (1, 1), (200, 100), (255, 255), (17, 250)] {
            assert_eq!(eval_u64(&circuit, &[(x, 8), (y, 8)]), x + y, "{x} + {y}");
        }
    }

    #[test]
    fn add_mod_truncates() {
        let mut b = CircuitBuilder::new();
        let x = b.input_bus(8);
        let y = b.input_bus(8);
        let sum = b.add_mod(&x, &y);
        let circuit = b.finish_with_bus(&sum).unwrap();
        assert_eq!(eval_u64(&circuit, &[(200, 8), (100, 8)]), (200 + 100) % 256);
    }

    #[test]
    fn comparator_and_equality() {
        let mut b = CircuitBuilder::new();
        let x = b.input_bus(6);
        let y = b.input_bus(6);
        let gt = b.greater_than(&x, &y);
        let eq = b.equals(&x, &y);
        b.output(gt);
        b.output(eq);
        let circuit = b.finish().unwrap();
        for (x, y) in [(0u64, 0u64), (5, 5), (10, 3), (3, 10), (63, 62), (31, 32)] {
            let out = eval_u64(&circuit, &[(x, 6), (y, 6)]);
            let expect = u64::from(x > y) | (u64::from(x == y) << 1);
            assert_eq!(out, expect, "compare {x} vs {y}");
        }
    }

    #[test]
    fn max_and_mux() {
        let mut b = CircuitBuilder::new();
        let x = b.input_bus(5);
        let y = b.input_bus(5);
        let (max, from_a) = b.max(&x, &y);
        b.output_bus(&max);
        b.output(from_a);
        let circuit = b.finish().unwrap();
        for (x, y) in [(0u64, 7u64), (7, 0), (13, 13), (31, 30)] {
            let out = eval_u64(&circuit, &[(x, 5), (y, 5)]);
            let max_val = out & 0b11111;
            let flag = out >> 5;
            assert_eq!(max_val, x.max(y));
            assert_eq!(flag, u64::from(x > y));
        }
    }

    #[test]
    fn or_truth_table() {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let o = b.or(x, y);
        b.output(o);
        let circuit = b.finish().unwrap();
        for (x, y) in [(false, false), (true, false), (false, true), (true, true)] {
            assert_eq!(circuit.evaluate(&[x, y]).unwrap(), vec![x | y]);
        }
    }

    #[test]
    fn xor_bus_width_mismatch_panics() {
        let mut b = CircuitBuilder::new();
        let x = b.input_bus(3);
        let y = b.input_bus(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.xor_bus(&x, &y);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn constant_bus_values() {
        let mut b = CircuitBuilder::new();
        let c = b.constant_bus(0b1011, 4);
        b.output_bus(&c);
        let circuit = b.finish().unwrap();
        assert_eq!(
            circuit.evaluate(&[]).unwrap(),
            vec![true, true, false, true]
        );
    }

    #[test]
    fn bits_bytes_helpers_consistent_with_builder_layout() {
        let bits = bytes_to_bits(&[0x0F]);
        assert_eq!(bits_to_bytes(&bits), vec![0x0F]);
    }
}
