//! The workload library: the concrete functionalities evaluated in the
//! paper-reproduction experiments.
//!
//! Each builder returns a [`Circuit`] whose input is the concatenation of
//! the `n` parties' fixed-width inputs (party 0 first). The workloads mirror
//! the kinds of constant-depth / low-depth functions the paper's statements
//! are phrased for, plus the multi-output auction workload used by the
//! §4.3 generalisation.

use crate::builder::{Bus, CircuitBuilder};
use crate::circuit::Circuit;

/// XOR of all parties' `width`-bit inputs (constant multiplicative depth 0).
pub fn xor_aggregate(parties: usize, width: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    let mut b = CircuitBuilder::new();
    let mut acc: Option<Bus> = None;
    for _ in 0..parties {
        let input = b.input_bus(width);
        acc = Some(match acc {
            None => input,
            Some(prev) => b.xor_bus(&prev, &input),
        });
    }
    b.finish_with_bus(&acc.expect("at least one party"))
        .expect("builder produces valid circuits")
}

/// Sum of all parties' `width`-bit inputs modulo `2^width`.
pub fn sum_mod(parties: usize, width: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    let mut b = CircuitBuilder::new();
    let mut acc: Option<Bus> = None;
    for _ in 0..parties {
        let input = b.input_bus(width);
        acc = Some(match acc {
            None => input,
            Some(prev) => b.add_mod(&prev, &input),
        });
    }
    b.finish_with_bus(&acc.expect("at least one party"))
        .expect("builder produces valid circuits")
}

/// Majority vote: each party contributes one bit; the output bit is 1 iff
/// strictly more than half the parties voted 1.
pub fn majority(parties: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    let count_width = (usize::BITS - parties.leading_zeros()) as usize + 1;
    let mut b = CircuitBuilder::new();
    // Sum the votes.
    let mut acc = b.constant_bus(0, count_width);
    for _ in 0..parties {
        let vote = b.input();
        let vote_bus = b.bus_from_wire(vote, count_width);
        acc = b.add_mod(&acc, &vote_bus);
    }
    // Compare against floor(parties / 2).
    let threshold = b.constant_bus((parties / 2) as u64, count_width);
    let is_majority = b.greater_than(&acc, &threshold);
    b.output(is_majority);
    b.finish().expect("builder produces valid circuits")
}

/// First-price auction: each party submits a `width`-bit bid; the output is
/// the maximum bid followed by the winning party index.
pub fn auction_max(parties: usize, width: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    let index_width = (usize::BITS - parties.leading_zeros()) as usize;
    let mut b = CircuitBuilder::new();
    let mut best_bid: Option<Bus> = None;
    let mut best_idx: Option<Bus> = None;
    for i in 0..parties {
        let bid = b.input_bus(width);
        let idx = b.constant_bus(i as u64, index_width);
        match (best_bid.take(), best_idx.take()) {
            (None, None) => {
                best_bid = Some(bid);
                best_idx = Some(idx);
            }
            (Some(prev_bid), Some(prev_idx)) => {
                let new_wins = b.greater_than(&bid, &prev_bid);
                best_bid = Some(b.mux_bus(new_wins, &bid, &prev_bid));
                best_idx = Some(b.mux_bus(new_wins, &idx, &prev_idx));
            }
            _ => unreachable!("bid and index tracked together"),
        }
    }
    b.output_bus(&best_bid.expect("at least one party"));
    b.output_bus(&best_idx.expect("at least one party"));
    b.finish().expect("builder produces valid circuits")
}

/// All-equal test: outputs 1 iff every party supplied the same `width`-bit
/// input.
pub fn all_equal(parties: usize, width: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    let mut b = CircuitBuilder::new();
    let first = b.input_bus(width);
    let mut acc = b.constant(true);
    for _ in 1..parties {
        let other = b.input_bus(width);
        let eq = b.equals(&first, &other);
        acc = b.and(acc, eq);
    }
    b.output(acc);
    b.finish().expect("builder produces valid circuits")
}

/// Threshold tally: outputs 1 iff at least `threshold` of the parties' input
/// bits are set (a generalisation of [`majority`]).
pub fn threshold_vote(parties: usize, threshold: usize) -> Circuit {
    assert!(parties >= 1, "need at least one party");
    assert!(
        threshold >= 1 && threshold <= parties,
        "threshold out of range"
    );
    let count_width = (usize::BITS - parties.leading_zeros()) as usize + 1;
    let mut b = CircuitBuilder::new();
    let mut acc = b.constant_bus(0, count_width);
    for _ in 0..parties {
        let vote = b.input();
        let vote_bus = b.bus_from_wire(vote, count_width);
        acc = b.add_mod(&acc, &vote_bus);
    }
    let limit = b.constant_bus(threshold as u64 - 1, count_width);
    let reached = b.greater_than(&acc, &limit);
    b.output(reached);
    b.finish().expect("builder produces valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(circuit: &Circuit, party_values: &[(u64, usize)]) -> u64 {
        let bits: Vec<bool> = party_values
            .iter()
            .flat_map(|(value, width)| (0..*width).map(move |i| (value >> i) & 1 == 1))
            .collect();
        let out = circuit.evaluate(&bits).unwrap();
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &bit)| acc | (u64::from(bit) << i))
    }

    #[test]
    fn xor_aggregate_matches_reference() {
        let circuit = xor_aggregate(4, 8);
        let inputs = [(0xAAu64, 8), (0x0F, 8), (0xF0, 8), (0x3C, 8)];
        assert_eq!(eval(&circuit, &inputs), 0xAA ^ 0x0F ^ 0xF0 ^ 0x3C);
        assert_eq!(circuit.multiplicative_depth(), 0);
    }

    #[test]
    fn sum_mod_matches_reference() {
        let circuit = sum_mod(5, 8);
        let values = [200u64, 100, 17, 255, 1];
        let inputs: Vec<(u64, usize)> = values.iter().map(|&v| (v, 8)).collect();
        assert_eq!(eval(&circuit, &inputs), values.iter().sum::<u64>() % 256);
    }

    #[test]
    fn majority_various() {
        for n in [1usize, 2, 3, 4, 5, 9] {
            let circuit = majority(n);
            for ones in 0..=n {
                let inputs: Vec<(u64, usize)> = (0..n).map(|i| (u64::from(i < ones), 1)).collect();
                let expect = u64::from(ones * 2 > n);
                assert_eq!(eval(&circuit, &inputs), expect, "n={n}, ones={ones}");
            }
        }
    }

    #[test]
    fn auction_picks_highest_bid_and_winner() {
        let circuit = auction_max(4, 8);
        let bids = [37u64, 201, 15, 90];
        let inputs: Vec<(u64, usize)> = bids.iter().map(|&b| (b, 8)).collect();
        let out = eval(&circuit, &inputs);
        let max_bid = out & 0xFF;
        let winner = out >> 8;
        assert_eq!(max_bid, 201);
        assert_eq!(winner, 1);
    }

    #[test]
    fn auction_tie_goes_to_earlier_party() {
        let circuit = auction_max(3, 4);
        let out = eval(&circuit, &[(9, 4), (9, 4), (3, 4)]);
        assert_eq!(out & 0xF, 9);
        assert_eq!(out >> 4, 0, "strict comparison keeps the earlier winner");
    }

    #[test]
    fn all_equal_detects_differences() {
        let circuit = all_equal(3, 4);
        assert_eq!(eval(&circuit, &[(7, 4), (7, 4), (7, 4)]), 1);
        assert_eq!(eval(&circuit, &[(7, 4), (7, 4), (6, 4)]), 0);
        let single = all_equal(1, 4);
        assert_eq!(eval(&single, &[(3, 4)]), 1);
    }

    #[test]
    fn threshold_vote_counts() {
        let circuit = threshold_vote(6, 4);
        for ones in 0..=6usize {
            let inputs: Vec<(u64, usize)> = (0..6).map(|i| (u64::from(i < ones), 1)).collect();
            assert_eq!(eval(&circuit, &inputs), u64::from(ones >= 4), "ones={ones}");
        }
    }

    #[test]
    fn workload_depths_are_modest() {
        // The paper targets low-depth functions; make sure the library's
        // workloads have multiplicative depth well below their sizes.
        for (circuit, label) in [
            (xor_aggregate(16, 8), "xor"),
            (sum_mod(16, 8), "sum"),
            (majority(16), "majority"),
            (auction_max(8, 8), "auction"),
            (all_equal(8, 8), "all_equal"),
        ] {
            assert!(
                circuit.multiplicative_depth() <= circuit.gate_count(),
                "{label}: depth sanity"
            );
            assert!(circuit.multiplicative_depth() >= 1 || label == "xor");
        }
    }
}
