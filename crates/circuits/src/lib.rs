//! # mpca-circuits
//!
//! A boolean-circuit substrate used to describe the functionalities `f` that
//! the MPC protocols compute.
//!
//! The paper states its protocols for functions of bounded circuit depth `D`:
//! the communication cost of the encrypted functionality (Theorem 9) grows
//! with `poly(λ, D)`, so the experiment harness needs the depth of each
//! workload, and the ideal/hybrid realisation needs to *evaluate* the
//! function on the parties' inputs. This crate provides:
//!
//! * [`Circuit`] — a gate-list representation with XOR/AND/NOT/constant
//!   gates, topological evaluation, and exact depth computation (counting
//!   multiplicative depth separately, since XOR is "free" for most
//!   FHE-style cost models);
//! * [`CircuitBuilder`] — a small combinator layer (wires, multi-bit buses,
//!   adders, comparators, multiplexers) for building workloads;
//! * [`library`] — the concrete workloads used in the experiments
//!   (XOR aggregation, bounded sums, majority voting, maximum/second-price
//!   auctions, equality).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod circuit;
pub mod library;

pub use builder::{Bus, CircuitBuilder, Wire};
pub use circuit::{Circuit, CircuitError, Gate, GateId};
