//! Gate-list circuits: representation, evaluation, and depth analysis.

use std::error::Error;
use std::fmt;

/// Identifier of a gate (its index in the gate list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub usize);

/// A single gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// An input bit (index into the flattened input bit-vector).
    Input(usize),
    /// A constant bit.
    Const(bool),
    /// XOR of two earlier gates.
    Xor(GateId, GateId),
    /// AND of two earlier gates.
    And(GateId, GateId),
    /// Negation of an earlier gate.
    Not(GateId),
}

/// Errors returned by circuit construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a gate at an equal or later index.
    ForwardReference {
        /// The offending gate.
        gate: usize,
    },
    /// An input gate referenced an input bit beyond the declared input size.
    InputOutOfRange {
        /// The referenced input index.
        index: usize,
        /// Declared number of input bits.
        input_bits: usize,
    },
    /// An output referenced a non-existent gate.
    BadOutput {
        /// The offending output wire.
        gate: usize,
    },
    /// Evaluation was invoked with the wrong number of input bits.
    WrongInputLength {
        /// Bits supplied.
        got: usize,
        /// Bits expected.
        expected: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::ForwardReference { gate } => {
                write!(f, "gate {gate} references a later gate")
            }
            CircuitError::InputOutOfRange { index, input_bits } => {
                write!(
                    f,
                    "input index {index} out of range (circuit has {input_bits} input bits)"
                )
            }
            CircuitError::BadOutput { gate } => write!(f, "output references missing gate {gate}"),
            CircuitError::WrongInputLength { got, expected } => {
                write!(f, "expected {expected} input bits, got {got}")
            }
        }
    }
}

impl Error for CircuitError {}

/// A boolean circuit over XOR/AND/NOT gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// Number of input bits.
    input_bits: usize,
    /// Gates in topological order.
    gates: Vec<Gate>,
    /// Output wires (gate ids), in order.
    outputs: Vec<GateId>,
}

impl Circuit {
    /// Creates a circuit from parts, validating topological order and ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when any gate references a later gate, an
    /// out-of-range input, or an output references a missing gate.
    pub fn new(
        input_bits: usize,
        gates: Vec<Gate>,
        outputs: Vec<GateId>,
    ) -> Result<Self, CircuitError> {
        for (i, gate) in gates.iter().enumerate() {
            let check = |id: GateId| -> Result<(), CircuitError> {
                if id.0 >= i {
                    Err(CircuitError::ForwardReference { gate: i })
                } else {
                    Ok(())
                }
            };
            match gate {
                Gate::Input(idx) => {
                    if *idx >= input_bits {
                        return Err(CircuitError::InputOutOfRange {
                            index: *idx,
                            input_bits,
                        });
                    }
                }
                Gate::Const(_) => {}
                Gate::Xor(a, b) | Gate::And(a, b) => {
                    check(*a)?;
                    check(*b)?;
                }
                Gate::Not(a) => check(*a)?,
            }
        }
        for output in &outputs {
            if output.0 >= gates.len() {
                return Err(CircuitError::BadOutput { gate: output.0 });
            }
        }
        Ok(Self {
            input_bits,
            gates,
            outputs,
        })
    }

    /// Number of input bits.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Number of output bits.
    pub fn output_bits(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of AND gates (the multiplicative size).
    pub fn and_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::And(_, _)))
            .count()
    }

    /// Total circuit depth, counting every gate as depth 1.
    pub fn depth(&self) -> usize {
        self.depth_by(|_| 1)
    }

    /// Multiplicative depth: only AND gates add depth (XOR/NOT are free, as
    /// in standard FHE cost models, which is the `D` in `poly(λ, D)`).
    pub fn multiplicative_depth(&self) -> usize {
        self.depth_by(|gate| usize::from(matches!(gate, Gate::And(_, _))))
    }

    fn depth_by(&self, cost: impl Fn(&Gate) -> usize) -> usize {
        let mut depths = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let input_depth = match gate {
                Gate::Input(_) | Gate::Const(_) => 0,
                Gate::Xor(a, b) | Gate::And(a, b) => depths[a.0].max(depths[b.0]),
                Gate::Not(a) => depths[a.0],
            };
            depths[i] = input_depth + cost(gate);
        }
        self.outputs.iter().map(|o| depths[o.0]).max().unwrap_or(0)
    }

    /// Evaluates the circuit on a flattened input bit-vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongInputLength`] if `inputs` has the wrong
    /// length.
    pub fn evaluate(&self, inputs: &[bool]) -> Result<Vec<bool>, CircuitError> {
        if inputs.len() != self.input_bits {
            return Err(CircuitError::WrongInputLength {
                got: inputs.len(),
                expected: self.input_bits,
            });
        }
        let mut values = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = match gate {
                Gate::Input(idx) => inputs[*idx],
                Gate::Const(b) => *b,
                Gate::Xor(a, b) => values[a.0] ^ values[b.0],
                Gate::And(a, b) => values[a.0] & values[b.0],
                Gate::Not(a) => !values[a.0],
            };
        }
        Ok(self.outputs.iter().map(|o| values[o.0]).collect())
    }

    /// Evaluates the circuit on per-party byte inputs, concatenated in party
    /// order and interpreted little-endian bit-wise, returning output bytes
    /// (zero-padded in the last byte).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WrongInputLength`] if the concatenated inputs
    /// do not provide exactly the declared number of input bits.
    pub fn evaluate_bytes(&self, party_inputs: &[Vec<u8>]) -> Result<Vec<u8>, CircuitError> {
        let bits: Vec<bool> = party_inputs
            .iter()
            .flat_map(|bytes| bytes_to_bits(bytes))
            .collect();
        if bits.len() < self.input_bits {
            return Err(CircuitError::WrongInputLength {
                got: bits.len(),
                expected: self.input_bits,
            });
        }
        let outputs = self.evaluate(&bits[..self.input_bits])?;
        Ok(bits_to_bytes(&outputs))
    }
}

/// Expands bytes into bits, least-significant bit of each byte first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    bytes
        .iter()
        .flat_map(|byte| (0..8).map(move |i| (byte >> i) & 1 == 1))
        .collect()
}

/// Packs bits into bytes, least-significant bit of each byte first.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_and_circuit() -> Circuit {
        // out0 = (in0 ^ in1), out1 = (in0 & in1)
        Circuit::new(
            2,
            vec![
                Gate::Input(0),
                Gate::Input(1),
                Gate::Xor(GateId(0), GateId(1)),
                Gate::And(GateId(0), GateId(1)),
            ],
            vec![GateId(2), GateId(3)],
        )
        .unwrap()
    }

    #[test]
    fn half_adder_truth_table() {
        let circuit = xor_and_circuit();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = circuit.evaluate(&[a, b]).unwrap();
            assert_eq!(out, vec![a ^ b, a & b]);
        }
    }

    #[test]
    fn depth_and_counts() {
        let circuit = xor_and_circuit();
        assert_eq!(circuit.gate_count(), 4);
        assert_eq!(circuit.and_count(), 1);
        assert_eq!(circuit.depth(), 2);
        assert_eq!(circuit.multiplicative_depth(), 1);
        assert_eq!(circuit.input_bits(), 2);
        assert_eq!(circuit.output_bits(), 2);
    }

    #[test]
    fn validation_rejects_bad_circuits() {
        assert!(matches!(
            Circuit::new(1, vec![Gate::Xor(GateId(0), GateId(1))], vec![]),
            Err(CircuitError::ForwardReference { .. })
        ));
        assert!(matches!(
            Circuit::new(1, vec![Gate::Input(3)], vec![]),
            Err(CircuitError::InputOutOfRange { .. })
        ));
        assert!(matches!(
            Circuit::new(1, vec![Gate::Input(0)], vec![GateId(7)]),
            Err(CircuitError::BadOutput { .. })
        ));
    }

    #[test]
    fn wrong_input_length_rejected() {
        let circuit = xor_and_circuit();
        assert!(matches!(
            circuit.evaluate(&[true]),
            Err(CircuitError::WrongInputLength {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn bit_byte_round_trips() {
        let bytes = vec![0b1010_0001u8, 0xFF, 0x00, 0x5A];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(bits_to_bytes(&bits), bytes);
        assert!(bits[0]);
        assert!(!bits[1]);
    }

    #[test]
    fn evaluate_bytes_concatenates_party_inputs() {
        // Two parties, one byte each; output = bitwise XOR of the two bytes.
        let mut gates = Vec::new();
        let mut outputs = Vec::new();
        for bit in 0..8 {
            gates.push(Gate::Input(bit));
            gates.push(Gate::Input(8 + bit));
            gates.push(Gate::Xor(GateId(gates.len() - 2), GateId(gates.len() - 1)));
            outputs.push(GateId(gates.len() - 1));
        }
        let circuit = Circuit::new(16, gates, outputs).unwrap();
        let out = circuit
            .evaluate_bytes(&[vec![0b1100_1010], vec![0b1010_1100]])
            .unwrap();
        assert_eq!(out, vec![0b0110_0110]);
    }

    #[test]
    fn constant_gates() {
        let circuit = Circuit::new(
            0,
            vec![Gate::Const(true), Gate::Const(false), Gate::Not(GateId(1))],
            vec![GateId(0), GateId(2)],
        )
        .unwrap();
        assert_eq!(circuit.evaluate(&[]).unwrap(), vec![true, true]);
        assert_eq!(circuit.depth(), 2);
        assert_eq!(circuit.multiplicative_depth(), 0);
    }
}
