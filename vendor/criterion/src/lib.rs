//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! provides a minimal wall-clock benchmark runner with the same surface:
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros. It reports mean ns/iter to stdout and performs
//! no statistical analysis.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, |b| f(b));
        self
    }
}

/// A named set of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iterations += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        ..Bencher::default()
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total_nanos / u128::from(bencher.iterations);
        println!(
            "bench {label}: {mean} ns/iter ({} iters)",
            bencher.iterations
        );
    } else {
        println!("bench {label}: no iterations recorded");
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &5u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("n32").to_string(), "n32");
    }
}
