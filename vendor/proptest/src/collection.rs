//! Collection strategies: `vec`, `btree_map` and `btree_set` with
//! exact-or-ranged size specifications.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection size: exact or a half-open range, mirroring
/// `proptest::collection::SizeRange`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy for `Vec<T>` with the given element strategy and size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`. Like real proptest, the size bound is the
/// number of *insertions*; duplicate keys collapse, so the resulting map may
/// be smaller.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// Strategy for `BTreeSet<T>`; duplicate elements collapse.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("sizes");
        for _ in 0..20 {
            assert_eq!(vec(any::<u8>(), 7).generate(&mut rng).len(), 7);
            let len = vec(any::<u8>(), 3..9).generate(&mut rng).len();
            assert!((3..9).contains(&len));
        }
    }

    #[test]
    fn nested_collection_strategies_compose() {
        let mut rng = TestRng::from_name("nested");
        let nested = vec((any::<u32>(), vec(any::<u8>(), 0..4)), 0..6).generate(&mut rng);
        assert!(nested.len() < 6);
        for (_, inner) in nested {
            assert!(inner.len() < 4);
        }
    }
}
