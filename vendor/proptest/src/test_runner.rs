//! Deterministic case runner: configuration, RNG and failure type.

use std::fmt;

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case failed.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic generator (xoshiro256**), seeded from the
/// test name so every run of the suite explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary name via FNV-1a + splitmix64.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = [0u64; 4];
        for slot in &mut state {
            hash = hash.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = hash;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform value in `[0, bound)` via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_name_sensitive() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::from_name("below");
        for bound in [1u64, 2, 7, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
