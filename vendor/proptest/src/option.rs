//! The `Option` strategy: `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` about a quarter of the time (matching real
/// proptest's default `Some` weight of 3:1) and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn both_variants_appear() {
        let mut rng = TestRng::from_name("option");
        let strat = of(any::<u64>());
        let nones = (0..200)
            .filter(|_| strat.generate(&mut rng).is_none())
            .count();
        assert!(nones > 10 && nones < 150, "nones = {nones}");
    }
}
