//! `any::<T>()`: the canonical whole-domain strategy for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// A strategy generating any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_types_use_all_bits() {
        let mut rng = TestRng::from_name("wide");
        let mut high_bits = 0u128;
        for _ in 0..32 {
            high_bits |= u128::arbitrary(&mut rng) >> 64;
        }
        assert_ne!(high_bits, 0, "upper 64 bits of u128 must be populated");
    }

    #[test]
    fn bools_take_both_values() {
        let mut rng = TestRng::from_name("bools");
        let trues = (0..100).filter(|_| bool::arbitrary(&mut rng)).count();
        assert!(trues > 10 && trues < 90);
    }
}
