//! The value-generation trait and the built-in strategies for ranges,
//! tuples and regex-subset strings.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`
/// (without shrinking: this offline subset reports the failing inputs instead).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(width) as $ty
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($ty:ty => $wide:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    ((self.start as $wide) + rng.below(width) as $wide) as $ty
                }
            }
        )*
    };
}

impl_signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Regex-string strategies. Real proptest compiles the full regex; this
/// offline subset supports the patterns the workspace actually uses:
/// `.{a,b}` (and bare `.` / `.{k}`), generating printable-ASCII strings
/// whose length lies in the bounds.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or_else(|| {
            panic!("offline proptest subset supports only `.{{a,b}}`-style regexes, got {self:?}")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| char::from(b' ' + rng.below(95) as u8))
            .collect()
    }
}

/// Parses `.`, `.{k}` or `.{a,b}` into `(min, max)` length bounds.
fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix('.')?;
    if rest.is_empty() {
        return Some((1, 1));
    }
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo = lo.trim().parse().ok()?;
            let hi = hi.trim().parse().ok()?;
            (lo <= hi).then_some((lo, hi))
        }
        None => {
            let k = body.trim().parse().ok()?;
            Some((k, k))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dot_forms() {
        assert_eq!(parse_dot_repetition("."), Some((1, 1)));
        assert_eq!(parse_dot_repetition(".{5}"), Some((5, 5)));
        assert_eq!(parse_dot_repetition(".{0,64}"), Some((0, 64)));
        assert_eq!(parse_dot_repetition("[a-z]+"), None);
        assert_eq!(parse_dot_repetition(".{9,3}"), None);
    }

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut rng = TestRng::from_name("signed");
        for _ in 0..200 {
            let v = (-5i32..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn string_strategy_is_printable() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..50 {
            let s = ".{0,16}".generate(&mut rng);
            assert!(s.len() <= 16);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }
}
