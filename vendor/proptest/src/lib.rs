//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! vendors a deterministic, non-shrinking property-testing harness with the
//! same surface syntax: the `proptest!` macro, `any::<T>()`, integer-range
//! and tuple strategies, `proptest::collection::{vec, btree_map, btree_set}`,
//! `proptest::option::of`, a `.{a,b}` regex-string strategy, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: failing cases are not shrunk (the failing
//! input values are printed instead), and case generation is seeded from the
//! test name, so runs are fully deterministic.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The conventional glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares a block of property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each test runs
/// `config.cases` deterministic cases; `prop_assert*` failures report the
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    // Render inputs before the body can move them.
                    let rendered_inputs =
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ");
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}\ninputs: {rendered_inputs}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with the
/// generated inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `prop_assert!` for inequality, reporting both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn vectors_have_requested_sizes(
            exact in crate::collection::vec(any::<u8>(), 5),
            ranged in crate::collection::vec(any::<u16>(), 2..9),
        ) {
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((2..9).contains(&ranged.len()));
        }

        #[test]
        fn regex_subset_generates_bounded_strings(s in ".{0,64}") {
            prop_assert!(s.chars().count() <= 64);
        }

        #[test]
        fn tuples_and_options_generate(v in (any::<u32>(), crate::option::of(any::<u64>()))) {
            let (_word, opt) = v;
            if let Some(x) = opt {
                prop_assert_ne!(x, x.wrapping_add(1));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_accepted(v in any::<bool>()) {
            prop_assert_eq!(v as u8 & 1, v as u8);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 4);
        let mut a = crate::test_runner::TestRng::from_name("det");
        let mut b = crate::test_runner::TestRng::from_name("det");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn maps_and_sets_respect_size_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("maps");
        let map =
            crate::collection::btree_map(any::<u32>(), any::<u64>(), 0..32).generate(&mut rng);
        assert!(map.len() < 32);
        let set = crate::collection::btree_set(any::<u16>(), 0..64).generate(&mut rng);
        assert!(set.len() < 64);
    }
}
