//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: the [`RngCore`], [`CryptoRng`] and [`SeedableRng`] traits and the
//! [`Error`] type. The build environment has no access to crates.io, and the
//! workspace only needs the trait vocabulary (all actual randomness comes
//! from `mpca_crypto::Prg`), so this crate vendors exactly that surface.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type reported by fallible RNG operations (rand 0.8 signature).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (rand 0.8 signature).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Generators that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, typically `[u8; N]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Counter {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Counter(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = Counter::seed_from_u64(42).0;
        let b = Counter::seed_from_u64(42).0;
        assert_eq!(a, b);
        assert_ne!(a, Counter::seed_from_u64(43).0);
    }

    #[test]
    fn mut_ref_forwards() {
        fn take_rng<R: RngCore>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut c = Counter(0);
        assert_eq!(take_rng(&mut c), 1);
        assert_eq!(c.next_u64(), 2);
    }
}
