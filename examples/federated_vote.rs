//! A federated yes/no vote computed three ways, comparing the paper's
//! protocols on the same workload:
//!
//! * Theorem 1 (committee MPC, Algorithm 3) — least communication,
//! * Theorem 2 (sparse gossip MPC) — least locality,
//! * Theorem 4 (Algorithm 8) — the tradeoff between the two.
//!
//! The vote is a sum of 0/1 ballots; the tally stays hidden behind LWE
//! encryption on the Theorem 1/4 concrete paths.
//!
//! Run with: `cargo run --release --example federated_vote`

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::net::{CommonRandomString, Simulator};
use mpc_aborts::protocols::{local_mpc, mpc, tradeoff, ExecutionPath, ProtocolParams};

fn main() {
    let n = 48;
    let h = 24;
    let params = ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    });
    let functionality = Functionality::Sum { input_bytes: 2 };

    // One ballot per organisation: 1 = yes, 0 = no.
    let ballots: Vec<u16> = (0..n).map(|i| u16::from(i % 3 != 0)).collect();
    let inputs: Vec<Vec<u8>> = ballots.iter().map(|b| b.to_le_bytes().to_vec()).collect();
    let expected: u16 = ballots.iter().sum();
    println!("== Federated vote: {n} organisations, expected tally {expected} ==\n");

    // Theorem 1: committee MPC.
    let crs = CommonRandomString::from_label(b"vote-theorem-1");
    let parties = mpc::mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );
    let r1 = Simulator::all_honest(n, parties).unwrap().run().unwrap();
    report("Theorem 1 (committee MPC)", &r1, expected);

    // Theorem 2: sparse gossip MPC.
    let crs = CommonRandomString::from_label(b"vote-theorem-2");
    let parties =
        local_mpc::local_mpc_parties(&params, &functionality, &inputs, crs, &BTreeSet::new());
    let r2 = Simulator::all_honest(n, parties).unwrap().run().unwrap();
    report("Theorem 2 (sparse gossip MPC)", &r2, expected);

    // Theorem 4: the tradeoff protocol.
    let crs = CommonRandomString::from_label(b"vote-theorem-4");
    let parties = tradeoff::tradeoff_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );
    let r4 = Simulator::all_honest(n, parties).unwrap().run().unwrap();
    report("Theorem 4 (tradeoff protocol)", &r4, expected);
}

fn report(label: &str, result: &mpc_aborts::net::RunResult<Vec<u8>>, expected: u16) {
    let output = result.unanimous_output().expect("honest run agrees");
    let tally = u16::from_le_bytes([output[0], output[1]]);
    assert_eq!(tally, expected);
    println!("{label}");
    println!("  tally     : {tally}");
    println!("  bits sent : {}", result.honest_bits());
    println!("  locality  : {}", result.honest_locality());
    println!("  rounds    : {}\n", result.rounds);
}
