//! A sealed-bid second-price (Vickrey) auction with **per-party private
//! outputs** (Algorithm 4, §4.3): the winner learns the price it must pay,
//! every other bidder learns only that it lost, and committee signatures
//! prevent the single relay from tampering with anyone's result.
//!
//! Run with: `cargo run --release --example private_auction`

use std::collections::BTreeSet;

use mpc_aborts::encfunc::MultiOutputFunctionality;
use mpc_aborts::net::{CommonRandomString, PartyId, Simulator};
use mpc_aborts::protocols::multi_output::{multi_output_host, multi_output_parties};
use mpc_aborts::protocols::ProtocolParams;

fn main() {
    let n = 16;
    let h = 8;
    let params = ProtocolParams::new(n, h);
    let functionality = MultiOutputFunctionality::VickreyAuction { input_bytes: 2 };

    // Sealed bids (private inputs).
    let bids: Vec<u16> = vec![
        120, 340, 95, 410, 220, 15, 388, 270, 199, 305, 42, 510, 77, 260, 330, 148,
    ];
    let inputs: Vec<Vec<u8>> = bids.iter().map(|b| b.to_le_bytes().to_vec()).collect();

    let crs = CommonRandomString::from_label(b"private-auction");
    let host = multi_output_host(&params, &functionality, &crs);
    let parties = multi_output_parties(
        &params,
        &functionality,
        &inputs,
        crs,
        host,
        &BTreeSet::new(),
    );

    let result = Simulator::all_honest(n, parties)
        .expect("valid configuration")
        .run()
        .expect("protocol terminates");
    assert!(!result.any_abort(), "honest auction should not abort");

    println!("== Sealed-bid Vickrey auction (Algorithm 4, multi-output MPC) ==");
    println!("bidders: {n}, honest lower bound: {h}");
    println!("honest communication: {} bits", result.honest_bits());
    let mut winner = None;
    for id in PartyId::all(n) {
        let output = result.outcome_of(id).unwrap().output().unwrap();
        let price = u16::from_le_bytes([output[0], output[1]]);
        if price > 0 {
            winner = Some((id, price));
        }
    }
    let (winner, price) = winner.expect("someone wins");
    println!("party {winner} wins and pays the second-highest bid: {price}");
    println!("every other bidder's private output is 0 (they learn nothing more)");

    // Cross-check against the public reference evaluation.
    let expected = functionality.evaluate(&inputs);
    for id in PartyId::all(n) {
        assert_eq!(
            result.outcome_of(id).unwrap().output().unwrap(),
            &expected[id.index()]
        );
    }
}
