//! Builds the sparse routing network of Algorithm 5, gossips every party's
//! input over it with Algorithm 6, and prints the resulting degree, locality
//! and communication — the machinery behind Theorem 2.
//!
//! Run with: `cargo run --release --example sparse_gossip`

use std::collections::{BTreeMap, BTreeSet};

use mpc_aborts::net::{PartyId, Simulator};
use mpc_aborts::protocols::gossip::GossipParty;
use mpc_aborts::protocols::sparse::{honest_subgraph_connected, sparse_parties, Neighborhood};
use mpc_aborts::protocols::ProtocolParams;

fn main() {
    let params = ProtocolParams::new(128, 64);
    println!("== Sparse routing network + responsible gossip ==");
    println!(
        "n = {}, h = {}, target out-degree d = {}",
        params.n,
        params.h,
        params.sparse_degree()
    );

    // Phase 1: establish the routing graph.
    let parties = sparse_parties(&params, b"sparse-gossip-example", &BTreeSet::new());
    let result = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert!(!result.any_abort());
    let graph: BTreeMap<PartyId, BTreeSet<PartyId>> = result
        .outcomes
        .iter()
        .map(|(id, o)| {
            let Neighborhood { neighbors } = o.output().unwrap().clone();
            (*id, neighbors)
        })
        .collect();
    let max_degree = graph.values().map(BTreeSet::len).max().unwrap();
    println!(
        "graph built: max degree {max_degree}, connected: {}",
        honest_subgraph_connected(&graph)
    );
    println!(
        "graph-establishment communication: {} bits",
        result.honest_bits()
    );

    // Phase 2: gossip one 8-byte input per party over the graph.
    let parties: Vec<GossipParty> = graph
        .iter()
        .map(|(id, neighbors)| {
            GossipParty::new(
                *id,
                neighbors.clone(),
                Some(vec![id.index() as u8; 8].into()),
                params.gossip_rounds(),
            )
        })
        .collect();
    let result = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert!(!result.any_abort());
    let view = result.unanimous_output().expect("honest gossip agrees");
    println!("gossip delivered {} inputs to every party", view.len());
    println!("gossip communication: {} bits", result.honest_bits());
    println!(
        "gossip locality: {} (vs {} for a clique)",
        result.honest_locality(),
        params.n - 1
    );
}
