//! Quickstart: 32 parties privately sum their inputs with the
//! communication-optimal committee protocol (Algorithm 3 / Theorem 1),
//! entirely on the concrete threshold-LWE path.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::net::{CommonRandomString, Simulator};
use mpc_aborts::protocols::mpc::{mpc_parties, ROUNDS};
use mpc_aborts::protocols::{ExecutionPath, ProtocolParams};

fn main() {
    let n = 32;
    let h = 16; // at least half the parties are honest
    let params = ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    });
    let functionality = Functionality::Sum { input_bytes: 2 };

    // Each party holds a private 16-bit salary; they want the total payroll.
    let salaries: Vec<u16> = (0..n as u16).map(|i| 1_000 + i * 37).collect();
    let inputs: Vec<Vec<u8>> = salaries.iter().map(|s| s.to_le_bytes().to_vec()).collect();

    let crs = CommonRandomString::from_label(b"quickstart-example");
    let parties = mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );

    let result = Simulator::all_honest(n, parties)
        .expect("valid configuration")
        .run()
        .expect("protocol terminates");

    let output = result.unanimous_output().expect("all honest parties agree");
    let total = u16::from_le_bytes([output[0], output[1]]);
    let expected: u16 = salaries.iter().fold(0, |acc, s| acc.wrapping_add(*s));

    println!("== MPC with abort: committee protocol (Theorem 1) ==");
    println!("parties (n)                : {n}");
    println!("honest lower bound (h)     : {h}");
    println!(
        "rounds                     : {} (fixed schedule: {ROUNDS})",
        result.rounds
    );
    println!("total payroll (computed)   : {total}");
    println!("total payroll (expected)   : {expected}");
    println!("honest communication       : {} bits", result.honest_bits());
    println!("locality (max peers/party) : {}", result.honest_locality());
    assert_eq!(total, expected);
}
