//! Adversary lab: build an attack campaign declaratively and let the
//! security-property oracle judge every execution.
//!
//! Run with: `cargo run --release --example adversary_lab`

use mpc_aborts::engine::Parallel;
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{
    AdversarySpec, Campaign, CorruptionSpec, Expectation, ScenarioPlan, TriggerSpec,
};

fn main() {
    // A campaign is data: protocol choice, (n, h) grid, adversary class,
    // seed. Attacks are composed from combinators, not re-implemented.
    let campaign = Campaign::new("lab")
        // Baseline: Theorem 1 MPC, everyone honest.
        .plan(
            ScenarioPlan::new("mpc", ProtocolKind::Theorem1Mpc, AdversarySpec::Honest)
                .with_grid([(16, 8)]),
        )
        // The selective abort pattern: two corrupted parties participate
        // honestly for four rounds, then crash.
        .plan(
            ScenarioPlan::new(
                "mpc",
                ProtocolKind::Theorem1Mpc,
                AdversarySpec::AbortAt {
                    corrupt: CorruptionSpec::Explicit(vec![0, 1]),
                    round: 4,
                },
            )
            .with_grid([(16, 14)]),
        )
        // A flood that waits for round 1 before unleashing junk; the
        // flooding rule says none of it may be charged.
        .plan(
            ScenarioPlan::new(
                "a2a",
                ProtocolKind::SuccinctAllToAll,
                AdversarySpec::Triggered {
                    base: Box::new(AdversarySpec::Flood {
                        corrupt: CorruptionSpec::Explicit(vec![0]),
                        victims: vec![],
                        junk_bytes: 4096,
                        round_budget: None,
                    }),
                    trigger: TriggerSpec::AtRound(1),
                },
            )
            .with_grid([(10, 9)]),
        )
        // A rigged control: a verification-free sum under equivocation.
        // The oracle MUST flag this one — that's what we expect of it.
        .plan(
            ScenarioPlan::new(
                "ctl",
                ProtocolKind::UncheckedSum,
                AdversarySpec::Equivocate {
                    corrupt: CorruptionSpec::Explicit(vec![0]),
                    victims: vec![1],
                },
            )
            .with_grid([(12, 11)])
            .expecting(Expectation::ViolatesAgreement),
        );

    let report = campaign
        .run(Parallel::default(), 4)
        .expect("campaign executes");

    println!("{}", report.render());
    println!("{}", report.summary());
    assert!(
        report.all_as_expected(),
        "every verdict matches its expectation (including the flagged control)"
    );
    println!("\nall verdicts as expected — the oracle holds, and it catches the rigged control");
}
