//! A fleet batch on the `mpca-engine` session pool: the Theorem 1 committee
//! MPC, sparse-gossip MPC (Theorem 2) and single-source broadcast across a
//! grid of network sizes, executed concurrently with the parallel backend —
//! then verified byte-identical against sequential single-session runs.
//!
//! Run with:
//!   cargo run --release --example fleet_batch

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::engine::{ExecutionBackend, Parallel, Sequential, SessionPool};
use mpc_aborts::net::{CommonRandomString, PartyId, Simulator};
use mpc_aborts::protocols::{broadcast, local_mpc, mpc, ExecutionPath, ProtocolParams};

fn sum_params(n: usize, h: usize) -> ProtocolParams {
    ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    })
}

fn submit_fleet<B: ExecutionBackend>(pool: &mut SessionPool<B>) {
    for (n, h) in [(16usize, 8usize), (24, 12), (32, 16), (48, 24)] {
        let params = sum_params(n, h);
        let functionality = Functionality::Sum { input_bytes: 2 };
        let inputs: Vec<Vec<u8>> = (0..n as u16)
            .map(|i| (i * 7).to_le_bytes().to_vec())
            .collect();

        let (f, i) = (functionality.clone(), inputs.clone());
        pool.submit(format!("thm1-sum-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("fleet-1-{n}").as_bytes());
            let parties = mpc::mpc_parties(
                &params,
                &f,
                ExecutionPath::Concrete,
                &i,
                crs,
                None,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });

        pool.submit(format!("thm2-sum-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("fleet-2-{n}").as_bytes());
            let parties = local_mpc::local_mpc_parties(
                &params,
                &functionality,
                &inputs,
                crs,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });

        pool.submit(format!("broadcast-n{n}"), move || {
            let parties =
                broadcast::broadcast_parties(n, PartyId(0), vec![0xAB; 64], &BTreeSet::new());
            Simulator::all_honest(n, parties)
        });
    }
}

fn main() {
    let mut pool = SessionPool::new(Parallel::default()).with_workers(8);
    submit_fleet(&mut pool);
    println!(
        "running {} sessions on the parallel backend ...",
        pool.len()
    );
    let batch = pool.run().expect("fleet batch");

    println!(
        "\n{:<20} {:>12} {:>8} {:>10}",
        "session", "bytes", "rounds", "wall"
    );
    for session in &batch.sessions {
        println!(
            "{:<20} {:>12} {:>8} {:>9.1?}",
            session.label,
            session.total_bytes(),
            session.rounds,
            session.wall,
        );
    }
    println!("\n{}", batch.summary());

    // The determinism guarantee, demonstrated: re-run the identical fleet
    // sequentially and compare every session report.
    let mut reference = SessionPool::new(Sequential).with_workers(1);
    submit_fleet(&mut reference);
    let reference = reference.run().expect("sequential reference");
    assert_eq!(batch.sessions, reference.sessions);
    println!(
        "verified: all {} parallel sessions byte-identical to sequential runs \
         (sequential/parallel wall-clock ratio: {:.1}x on {} core(s))",
        batch.sessions.len(),
        reference.wall.as_secs_f64() / batch.wall.as_secs_f64().max(1e-9),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );
}
