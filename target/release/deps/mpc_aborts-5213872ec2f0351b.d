/root/repo/target/release/deps/mpc_aborts-5213872ec2f0351b.d: src/lib.rs

/root/repo/target/release/deps/mpc_aborts-5213872ec2f0351b: src/lib.rs

src/lib.rs:
