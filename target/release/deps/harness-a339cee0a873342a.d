/root/repo/target/release/deps/harness-a339cee0a873342a.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-a339cee0a873342a: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
