/root/repo/target/release/deps/proptest_backends-37ec626a33bebe4e.d: tests/proptest_backends.rs Cargo.toml

/root/repo/target/release/deps/libproptest_backends-37ec626a33bebe4e.rmeta: tests/proptest_backends.rs Cargo.toml

tests/proptest_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
