/root/repo/target/release/deps/rand-f494390466b97bcb.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-f494390466b97bcb: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
