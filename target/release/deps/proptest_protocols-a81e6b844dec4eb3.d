/root/repo/target/release/deps/proptest_protocols-a81e6b844dec4eb3.d: tests/proptest_protocols.rs Cargo.toml

/root/repo/target/release/deps/libproptest_protocols-a81e6b844dec4eb3.rmeta: tests/proptest_protocols.rs Cargo.toml

tests/proptest_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
