/root/repo/target/release/deps/mpca_circuits-858540a79e74fc47.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/release/deps/mpca_circuits-858540a79e74fc47: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
