/root/repo/target/release/deps/criterion-765b6eaa85722c0f.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-765b6eaa85722c0f: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
