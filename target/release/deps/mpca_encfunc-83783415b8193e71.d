/root/repo/target/release/deps/mpca_encfunc-83783415b8193e71.d: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

/root/repo/target/release/deps/libmpca_encfunc-83783415b8193e71.rlib: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

/root/repo/target/release/deps/libmpca_encfunc-83783415b8193e71.rmeta: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

crates/encfunc/src/lib.rs:
crates/encfunc/src/cost_model.rs:
crates/encfunc/src/hybrid.rs:
crates/encfunc/src/keygen.rs:
crates/encfunc/src/linear.rs:
crates/encfunc/src/signing.rs:
crates/encfunc/src/spec.rs:
