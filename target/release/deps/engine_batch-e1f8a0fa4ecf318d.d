/root/repo/target/release/deps/engine_batch-e1f8a0fa4ecf318d.d: tests/engine_batch.rs

/root/repo/target/release/deps/engine_batch-e1f8a0fa4ecf318d: tests/engine_batch.rs

tests/engine_batch.rs:
