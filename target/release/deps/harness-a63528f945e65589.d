/root/repo/target/release/deps/harness-a63528f945e65589.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-a63528f945e65589: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
