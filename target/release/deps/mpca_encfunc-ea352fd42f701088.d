/root/repo/target/release/deps/mpca_encfunc-ea352fd42f701088.d: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

/root/repo/target/release/deps/mpca_encfunc-ea352fd42f701088: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

crates/encfunc/src/lib.rs:
crates/encfunc/src/cost_model.rs:
crates/encfunc/src/hybrid.rs:
crates/encfunc/src/keygen.rs:
crates/encfunc/src/linear.rs:
crates/encfunc/src/signing.rs:
crates/encfunc/src/spec.rs:
