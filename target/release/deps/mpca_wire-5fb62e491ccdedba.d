/root/repo/target/release/deps/mpca_wire-5fb62e491ccdedba.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libmpca_wire-5fb62e491ccdedba.rlib: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/libmpca_wire-5fb62e491ccdedba.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
