/root/repo/target/release/deps/proptest-16c7c41d560d9437.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-16c7c41d560d9437: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
