/root/repo/target/release/deps/mpc_aborts-1fed406815cc6ebc.d: src/lib.rs

/root/repo/target/release/deps/libmpc_aborts-1fed406815cc6ebc.rlib: src/lib.rs

/root/repo/target/release/deps/libmpc_aborts-1fed406815cc6ebc.rmeta: src/lib.rs

src/lib.rs:
