/root/repo/target/release/deps/proptest_backends-a57613e57d365545.d: tests/proptest_backends.rs

/root/repo/target/release/deps/proptest_backends-a57613e57d365545: tests/proptest_backends.rs

tests/proptest_backends.rs:
