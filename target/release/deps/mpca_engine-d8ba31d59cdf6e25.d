/root/repo/target/release/deps/mpca_engine-d8ba31d59cdf6e25.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/release/deps/mpca_engine-d8ba31d59cdf6e25: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
