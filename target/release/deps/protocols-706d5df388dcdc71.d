/root/repo/target/release/deps/protocols-706d5df388dcdc71.d: crates/bench/benches/protocols.rs Cargo.toml

/root/repo/target/release/deps/libprotocols-706d5df388dcdc71.rmeta: crates/bench/benches/protocols.rs Cargo.toml

crates/bench/benches/protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
