/root/repo/target/release/deps/mpca_engine-326c3cce1ebae410.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/release/deps/mpca_engine-326c3cce1ebae410: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
