/root/repo/target/release/deps/shimcheck-55b2a56a28b49df1.d: tests/shimcheck.rs

/root/repo/target/release/deps/shimcheck-55b2a56a28b49df1: tests/shimcheck.rs

tests/shimcheck.rs:
