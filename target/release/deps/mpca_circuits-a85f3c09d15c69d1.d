/root/repo/target/release/deps/mpca_circuits-a85f3c09d15c69d1.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/release/deps/libmpca_circuits-a85f3c09d15c69d1.rlib: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/release/deps/libmpca_circuits-a85f3c09d15c69d1.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
