/root/repo/target/release/deps/mpca_bench-179ffaf6c3469ce3.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmpca_bench-179ffaf6c3469ce3.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libmpca_bench-179ffaf6c3469ce3.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
