/root/repo/target/release/deps/mpc_aborts-e3c893fe3ac67144.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmpc_aborts-e3c893fe3ac67144.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
