/root/repo/target/release/deps/engine_batch-ba2e54976c69885c.d: tests/engine_batch.rs Cargo.toml

/root/repo/target/release/deps/libengine_batch-ba2e54976c69885c.rmeta: tests/engine_batch.rs Cargo.toml

tests/engine_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
