/root/repo/target/release/deps/mpca_net-981d37cee4fe5ae7.d: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

/root/repo/target/release/deps/mpca_net-981d37cee4fe5ae7: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

crates/net/src/lib.rs:
crates/net/src/adversary.rs:
crates/net/src/crs.rs:
crates/net/src/envelope.rs:
crates/net/src/error.rs:
crates/net/src/party.rs:
crates/net/src/simulator.rs:
crates/net/src/stats.rs:
