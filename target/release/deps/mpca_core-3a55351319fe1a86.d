/root/repo/target/release/deps/mpca_core-3a55351319fe1a86.d: crates/core/src/lib.rs crates/core/src/all_to_all.rs crates/core/src/broadcast.rs crates/core/src/committee.rs crates/core/src/equality.rs crates/core/src/gossip.rs crates/core/src/local_committee.rs crates/core/src/local_mpc.rs crates/core/src/lower_bound.rs crates/core/src/mpc.rs crates/core/src/multi_output.rs crates/core/src/params.rs crates/core/src/sparse.rs crates/core/src/tradeoff.rs

/root/repo/target/release/deps/libmpca_core-3a55351319fe1a86.rlib: crates/core/src/lib.rs crates/core/src/all_to_all.rs crates/core/src/broadcast.rs crates/core/src/committee.rs crates/core/src/equality.rs crates/core/src/gossip.rs crates/core/src/local_committee.rs crates/core/src/local_mpc.rs crates/core/src/lower_bound.rs crates/core/src/mpc.rs crates/core/src/multi_output.rs crates/core/src/params.rs crates/core/src/sparse.rs crates/core/src/tradeoff.rs

/root/repo/target/release/deps/libmpca_core-3a55351319fe1a86.rmeta: crates/core/src/lib.rs crates/core/src/all_to_all.rs crates/core/src/broadcast.rs crates/core/src/committee.rs crates/core/src/equality.rs crates/core/src/gossip.rs crates/core/src/local_committee.rs crates/core/src/local_mpc.rs crates/core/src/lower_bound.rs crates/core/src/mpc.rs crates/core/src/multi_output.rs crates/core/src/params.rs crates/core/src/sparse.rs crates/core/src/tradeoff.rs

crates/core/src/lib.rs:
crates/core/src/all_to_all.rs:
crates/core/src/broadcast.rs:
crates/core/src/committee.rs:
crates/core/src/equality.rs:
crates/core/src/gossip.rs:
crates/core/src/local_committee.rs:
crates/core/src/local_mpc.rs:
crates/core/src/lower_bound.rs:
crates/core/src/mpc.rs:
crates/core/src/multi_output.rs:
crates/core/src/params.rs:
crates/core/src/sparse.rs:
crates/core/src/tradeoff.rs:
