/root/repo/target/release/deps/mpca_circuits-69033c2e6fb9ae87.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

/root/repo/target/release/deps/libmpca_circuits-69033c2e6fb9ae87.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
