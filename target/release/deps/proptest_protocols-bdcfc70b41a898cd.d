/root/repo/target/release/deps/proptest_protocols-bdcfc70b41a898cd.d: tests/proptest_protocols.rs

/root/repo/target/release/deps/proptest_protocols-bdcfc70b41a898cd: tests/proptest_protocols.rs

tests/proptest_protocols.rs:
