/root/repo/target/release/deps/mpca_circuits-062c136be5d595bf.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

/root/repo/target/release/deps/libmpca_circuits-062c136be5d595bf.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
