/root/repo/target/release/deps/mpca_crypto-5f224ed172bee5ac.d: crates/crypto/src/lib.rs crates/crypto/src/chacha20.rs crates/crypto/src/commit.rs crates/crypto/src/fingerprint.rs crates/crypto/src/hmac.rs crates/crypto/src/lamport.rs crates/crypto/src/lwe.rs crates/crypto/src/merkle.rs crates/crypto/src/merkle_sig.rs crates/crypto/src/prg.rs crates/crypto/src/primes.rs crates/crypto/src/secret_sharing.rs crates/crypto/src/sha256.rs crates/crypto/src/ske.rs crates/crypto/src/threshold.rs

/root/repo/target/release/deps/mpca_crypto-5f224ed172bee5ac: crates/crypto/src/lib.rs crates/crypto/src/chacha20.rs crates/crypto/src/commit.rs crates/crypto/src/fingerprint.rs crates/crypto/src/hmac.rs crates/crypto/src/lamport.rs crates/crypto/src/lwe.rs crates/crypto/src/merkle.rs crates/crypto/src/merkle_sig.rs crates/crypto/src/prg.rs crates/crypto/src/primes.rs crates/crypto/src/secret_sharing.rs crates/crypto/src/sha256.rs crates/crypto/src/ske.rs crates/crypto/src/threshold.rs

crates/crypto/src/lib.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/commit.rs:
crates/crypto/src/fingerprint.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/lamport.rs:
crates/crypto/src/lwe.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/merkle_sig.rs:
crates/crypto/src/prg.rs:
crates/crypto/src/primes.rs:
crates/crypto/src/secret_sharing.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/ske.rs:
crates/crypto/src/threshold.rs:
