/root/repo/target/release/deps/harness-a1821d38ee683f9f.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/release/deps/libharness-a1821d38ee683f9f.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
