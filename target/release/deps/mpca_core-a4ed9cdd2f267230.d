/root/repo/target/release/deps/mpca_core-a4ed9cdd2f267230.d: crates/core/src/lib.rs crates/core/src/all_to_all.rs crates/core/src/broadcast.rs crates/core/src/committee.rs crates/core/src/equality.rs crates/core/src/gossip.rs crates/core/src/local_committee.rs crates/core/src/local_mpc.rs crates/core/src/lower_bound.rs crates/core/src/mpc.rs crates/core/src/multi_output.rs crates/core/src/params.rs crates/core/src/sparse.rs crates/core/src/tradeoff.rs Cargo.toml

/root/repo/target/release/deps/libmpca_core-a4ed9cdd2f267230.rmeta: crates/core/src/lib.rs crates/core/src/all_to_all.rs crates/core/src/broadcast.rs crates/core/src/committee.rs crates/core/src/equality.rs crates/core/src/gossip.rs crates/core/src/local_committee.rs crates/core/src/local_mpc.rs crates/core/src/lower_bound.rs crates/core/src/mpc.rs crates/core/src/multi_output.rs crates/core/src/params.rs crates/core/src/sparse.rs crates/core/src/tradeoff.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/all_to_all.rs:
crates/core/src/broadcast.rs:
crates/core/src/committee.rs:
crates/core/src/equality.rs:
crates/core/src/gossip.rs:
crates/core/src/local_committee.rs:
crates/core/src/local_mpc.rs:
crates/core/src/lower_bound.rs:
crates/core/src/mpc.rs:
crates/core/src/multi_output.rs:
crates/core/src/params.rs:
crates/core/src/sparse.rs:
crates/core/src/tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
