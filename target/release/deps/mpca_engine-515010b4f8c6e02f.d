/root/repo/target/release/deps/mpca_engine-515010b4f8c6e02f.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs Cargo.toml

/root/repo/target/release/deps/libmpca_engine-515010b4f8c6e02f.rmeta: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
