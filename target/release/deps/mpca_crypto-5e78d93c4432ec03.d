/root/repo/target/release/deps/mpca_crypto-5e78d93c4432ec03.d: crates/crypto/src/lib.rs crates/crypto/src/chacha20.rs crates/crypto/src/commit.rs crates/crypto/src/fingerprint.rs crates/crypto/src/hmac.rs crates/crypto/src/lamport.rs crates/crypto/src/lwe.rs crates/crypto/src/merkle.rs crates/crypto/src/merkle_sig.rs crates/crypto/src/prg.rs crates/crypto/src/primes.rs crates/crypto/src/secret_sharing.rs crates/crypto/src/sha256.rs crates/crypto/src/ske.rs crates/crypto/src/threshold.rs Cargo.toml

/root/repo/target/release/deps/libmpca_crypto-5e78d93c4432ec03.rmeta: crates/crypto/src/lib.rs crates/crypto/src/chacha20.rs crates/crypto/src/commit.rs crates/crypto/src/fingerprint.rs crates/crypto/src/hmac.rs crates/crypto/src/lamport.rs crates/crypto/src/lwe.rs crates/crypto/src/merkle.rs crates/crypto/src/merkle_sig.rs crates/crypto/src/prg.rs crates/crypto/src/primes.rs crates/crypto/src/secret_sharing.rs crates/crypto/src/sha256.rs crates/crypto/src/ske.rs crates/crypto/src/threshold.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/chacha20.rs:
crates/crypto/src/commit.rs:
crates/crypto/src/fingerprint.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/lamport.rs:
crates/crypto/src/lwe.rs:
crates/crypto/src/merkle.rs:
crates/crypto/src/merkle_sig.rs:
crates/crypto/src/prg.rs:
crates/crypto/src/primes.rs:
crates/crypto/src/secret_sharing.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/ske.rs:
crates/crypto/src/threshold.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
