/root/repo/target/release/deps/harness-9ebee76726817f01.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/release/deps/libharness-9ebee76726817f01.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
