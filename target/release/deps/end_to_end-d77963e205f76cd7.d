/root/repo/target/release/deps/end_to_end-d77963e205f76cd7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-d77963e205f76cd7: tests/end_to_end.rs

tests/end_to_end.rs:
