/root/repo/target/release/deps/proptest_roundtrip-0bcad2f456a94cd3.d: crates/wire/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/release/deps/libproptest_roundtrip-0bcad2f456a94cd3.rmeta: crates/wire/tests/proptest_roundtrip.rs Cargo.toml

crates/wire/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
