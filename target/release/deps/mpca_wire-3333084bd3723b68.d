/root/repo/target/release/deps/mpca_wire-3333084bd3723b68.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/release/deps/mpca_wire-3333084bd3723b68: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
