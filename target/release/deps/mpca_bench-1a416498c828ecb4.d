/root/repo/target/release/deps/mpca_bench-1a416498c828ecb4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/mpca_bench-1a416498c828ecb4: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
