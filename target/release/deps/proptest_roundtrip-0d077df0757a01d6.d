/root/repo/target/release/deps/proptest_roundtrip-0d077df0757a01d6.d: crates/wire/tests/proptest_roundtrip.rs

/root/repo/target/release/deps/proptest_roundtrip-0d077df0757a01d6: crates/wire/tests/proptest_roundtrip.rs

crates/wire/tests/proptest_roundtrip.rs:
