/root/repo/target/release/deps/mpca_engine-5890e324d3606b69.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/release/deps/libmpca_engine-5890e324d3606b69.rlib: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/release/deps/libmpca_engine-5890e324d3606b69.rmeta: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
