/root/repo/target/release/deps/mpc_aborts-b82039d7fd4c412c.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libmpc_aborts-b82039d7fd4c412c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
