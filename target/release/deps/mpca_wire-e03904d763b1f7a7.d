/root/repo/target/release/deps/mpca_wire-e03904d763b1f7a7.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs Cargo.toml

/root/repo/target/release/deps/libmpca_wire-e03904d763b1f7a7.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
