/root/repo/target/release/examples/sparse_gossip-569ad6579dbbe935.d: examples/sparse_gossip.rs Cargo.toml

/root/repo/target/release/examples/libsparse_gossip-569ad6579dbbe935.rmeta: examples/sparse_gossip.rs Cargo.toml

examples/sparse_gossip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
