/root/repo/target/release/examples/private_auction-7096dfa655cb05f7.d: examples/private_auction.rs

/root/repo/target/release/examples/private_auction-7096dfa655cb05f7: examples/private_auction.rs

examples/private_auction.rs:
