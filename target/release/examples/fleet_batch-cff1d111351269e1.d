/root/repo/target/release/examples/fleet_batch-cff1d111351269e1.d: examples/fleet_batch.rs Cargo.toml

/root/repo/target/release/examples/libfleet_batch-cff1d111351269e1.rmeta: examples/fleet_batch.rs Cargo.toml

examples/fleet_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
