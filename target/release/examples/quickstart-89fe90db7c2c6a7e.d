/root/repo/target/release/examples/quickstart-89fe90db7c2c6a7e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-89fe90db7c2c6a7e: examples/quickstart.rs

examples/quickstart.rs:
