/root/repo/target/release/examples/private_auction-81206ff7bf8db42b.d: examples/private_auction.rs Cargo.toml

/root/repo/target/release/examples/libprivate_auction-81206ff7bf8db42b.rmeta: examples/private_auction.rs Cargo.toml

examples/private_auction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
