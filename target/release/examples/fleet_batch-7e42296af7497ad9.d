/root/repo/target/release/examples/fleet_batch-7e42296af7497ad9.d: examples/fleet_batch.rs

/root/repo/target/release/examples/fleet_batch-7e42296af7497ad9: examples/fleet_batch.rs

examples/fleet_batch.rs:
