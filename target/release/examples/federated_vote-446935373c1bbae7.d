/root/repo/target/release/examples/federated_vote-446935373c1bbae7.d: examples/federated_vote.rs Cargo.toml

/root/repo/target/release/examples/libfederated_vote-446935373c1bbae7.rmeta: examples/federated_vote.rs Cargo.toml

examples/federated_vote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
