/root/repo/target/release/examples/quickstart-d550af72d1783c2d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-d550af72d1783c2d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
