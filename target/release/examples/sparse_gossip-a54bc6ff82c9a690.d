/root/repo/target/release/examples/sparse_gossip-a54bc6ff82c9a690.d: examples/sparse_gossip.rs

/root/repo/target/release/examples/sparse_gossip-a54bc6ff82c9a690: examples/sparse_gossip.rs

examples/sparse_gossip.rs:
