/root/repo/target/release/examples/federated_vote-fd0e840b55102180.d: examples/federated_vote.rs

/root/repo/target/release/examples/federated_vote-fd0e840b55102180: examples/federated_vote.rs

examples/federated_vote.rs:
