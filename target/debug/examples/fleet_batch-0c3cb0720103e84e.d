/root/repo/target/debug/examples/fleet_batch-0c3cb0720103e84e.d: examples/fleet_batch.rs Cargo.toml

/root/repo/target/debug/examples/libfleet_batch-0c3cb0720103e84e.rmeta: examples/fleet_batch.rs Cargo.toml

examples/fleet_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
