/root/repo/target/debug/examples/federated_vote-d0b64f0b5e679897.d: examples/federated_vote.rs

/root/repo/target/debug/examples/federated_vote-d0b64f0b5e679897: examples/federated_vote.rs

examples/federated_vote.rs:
