/root/repo/target/debug/examples/private_auction-e43b70f1d46f8067.d: examples/private_auction.rs

/root/repo/target/debug/examples/private_auction-e43b70f1d46f8067: examples/private_auction.rs

examples/private_auction.rs:
