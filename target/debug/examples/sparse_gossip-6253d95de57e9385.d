/root/repo/target/debug/examples/sparse_gossip-6253d95de57e9385.d: examples/sparse_gossip.rs

/root/repo/target/debug/examples/sparse_gossip-6253d95de57e9385: examples/sparse_gossip.rs

examples/sparse_gossip.rs:
