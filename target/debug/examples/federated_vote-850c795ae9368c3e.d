/root/repo/target/debug/examples/federated_vote-850c795ae9368c3e.d: examples/federated_vote.rs Cargo.toml

/root/repo/target/debug/examples/libfederated_vote-850c795ae9368c3e.rmeta: examples/federated_vote.rs Cargo.toml

examples/federated_vote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
