/root/repo/target/debug/examples/quickstart-f02edac1822ff116.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f02edac1822ff116: examples/quickstart.rs

examples/quickstart.rs:
