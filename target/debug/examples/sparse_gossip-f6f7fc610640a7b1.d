/root/repo/target/debug/examples/sparse_gossip-f6f7fc610640a7b1.d: examples/sparse_gossip.rs Cargo.toml

/root/repo/target/debug/examples/libsparse_gossip-f6f7fc610640a7b1.rmeta: examples/sparse_gossip.rs Cargo.toml

examples/sparse_gossip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
