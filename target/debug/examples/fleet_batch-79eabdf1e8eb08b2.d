/root/repo/target/debug/examples/fleet_batch-79eabdf1e8eb08b2.d: examples/fleet_batch.rs

/root/repo/target/debug/examples/fleet_batch-79eabdf1e8eb08b2: examples/fleet_batch.rs

examples/fleet_batch.rs:
