/root/repo/target/debug/examples/private_auction-c4dc98994f9af60b.d: examples/private_auction.rs Cargo.toml

/root/repo/target/debug/examples/libprivate_auction-c4dc98994f9af60b.rmeta: examples/private_auction.rs Cargo.toml

examples/private_auction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
