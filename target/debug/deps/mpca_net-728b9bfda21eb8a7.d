/root/repo/target/debug/deps/mpca_net-728b9bfda21eb8a7.d: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_net-728b9bfda21eb8a7.rmeta: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/adversary.rs:
crates/net/src/crs.rs:
crates/net/src/envelope.rs:
crates/net/src/error.rs:
crates/net/src/party.rs:
crates/net/src/simulator.rs:
crates/net/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
