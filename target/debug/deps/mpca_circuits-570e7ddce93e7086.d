/root/repo/target/debug/deps/mpca_circuits-570e7ddce93e7086.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/debug/deps/libmpca_circuits-570e7ddce93e7086.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
