/root/repo/target/debug/deps/engine_batch-145f684d41e35aaa.d: tests/engine_batch.rs Cargo.toml

/root/repo/target/debug/deps/libengine_batch-145f684d41e35aaa.rmeta: tests/engine_batch.rs Cargo.toml

tests/engine_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
