/root/repo/target/debug/deps/harness-dc794f5d8b3e8f39.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-dc794f5d8b3e8f39.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
