/root/repo/target/debug/deps/mpc_aborts-564e503838d69567.d: src/lib.rs

/root/repo/target/debug/deps/mpc_aborts-564e503838d69567: src/lib.rs

src/lib.rs:
