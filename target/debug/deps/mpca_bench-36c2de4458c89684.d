/root/repo/target/debug/deps/mpca_bench-36c2de4458c89684.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/mpca_bench-36c2de4458c89684: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
