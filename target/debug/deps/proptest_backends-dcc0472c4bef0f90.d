/root/repo/target/debug/deps/proptest_backends-dcc0472c4bef0f90.d: tests/proptest_backends.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_backends-dcc0472c4bef0f90.rmeta: tests/proptest_backends.rs Cargo.toml

tests/proptest_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
