/root/repo/target/debug/deps/mpca_circuits-e7b189f659e33547.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_circuits-e7b189f659e33547.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
