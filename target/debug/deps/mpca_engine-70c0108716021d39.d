/root/repo/target/debug/deps/mpca_engine-70c0108716021d39.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/debug/deps/mpca_engine-70c0108716021d39: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
