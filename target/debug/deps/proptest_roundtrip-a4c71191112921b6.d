/root/repo/target/debug/deps/proptest_roundtrip-a4c71191112921b6.d: crates/wire/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-a4c71191112921b6: crates/wire/tests/proptest_roundtrip.rs

crates/wire/tests/proptest_roundtrip.rs:
