/root/repo/target/debug/deps/mpca_circuits-a38d44f9549ef88d.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/debug/deps/libmpca_circuits-a38d44f9549ef88d.rlib: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/debug/deps/libmpca_circuits-a38d44f9549ef88d.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
