/root/repo/target/debug/deps/proptest_roundtrip-8d6695a6ce73f76b.d: crates/wire/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-8d6695a6ce73f76b.rmeta: crates/wire/tests/proptest_roundtrip.rs Cargo.toml

crates/wire/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
