/root/repo/target/debug/deps/mpca_wire-eb70490b91323470.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/mpca_wire-eb70490b91323470: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
