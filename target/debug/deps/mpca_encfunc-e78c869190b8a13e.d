/root/repo/target/debug/deps/mpca_encfunc-e78c869190b8a13e.d: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

/root/repo/target/debug/deps/libmpca_encfunc-e78c869190b8a13e.rlib: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

/root/repo/target/debug/deps/libmpca_encfunc-e78c869190b8a13e.rmeta: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs

crates/encfunc/src/lib.rs:
crates/encfunc/src/cost_model.rs:
crates/encfunc/src/hybrid.rs:
crates/encfunc/src/keygen.rs:
crates/encfunc/src/linear.rs:
crates/encfunc/src/signing.rs:
crates/encfunc/src/spec.rs:
