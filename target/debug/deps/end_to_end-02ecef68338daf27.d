/root/repo/target/debug/deps/end_to_end-02ecef68338daf27.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-02ecef68338daf27: tests/end_to_end.rs

tests/end_to_end.rs:
