/root/repo/target/debug/deps/protocols-06b53725a9812d2d.d: crates/bench/benches/protocols.rs Cargo.toml

/root/repo/target/debug/deps/libprotocols-06b53725a9812d2d.rmeta: crates/bench/benches/protocols.rs Cargo.toml

crates/bench/benches/protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
