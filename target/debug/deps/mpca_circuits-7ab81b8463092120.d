/root/repo/target/debug/deps/mpca_circuits-7ab81b8463092120.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

/root/repo/target/debug/deps/mpca_circuits-7ab81b8463092120: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
