/root/repo/target/debug/deps/proptest_protocols-ea7900a68028d926.d: tests/proptest_protocols.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_protocols-ea7900a68028d926.rmeta: tests/proptest_protocols.rs Cargo.toml

tests/proptest_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
