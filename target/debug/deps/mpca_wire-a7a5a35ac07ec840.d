/root/repo/target/debug/deps/mpca_wire-a7a5a35ac07ec840.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_wire-a7a5a35ac07ec840.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
