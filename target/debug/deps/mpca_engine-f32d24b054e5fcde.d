/root/repo/target/debug/deps/mpca_engine-f32d24b054e5fcde.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/debug/deps/libmpca_engine-f32d24b054e5fcde.rmeta: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
