/root/repo/target/debug/deps/mpca_engine-db1672d7100e6a9c.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/debug/deps/libmpca_engine-db1672d7100e6a9c.rlib: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

/root/repo/target/debug/deps/libmpca_engine-db1672d7100e6a9c.rmeta: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
