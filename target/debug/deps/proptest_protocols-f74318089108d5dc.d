/root/repo/target/debug/deps/proptest_protocols-f74318089108d5dc.d: tests/proptest_protocols.rs

/root/repo/target/debug/deps/proptest_protocols-f74318089108d5dc: tests/proptest_protocols.rs

tests/proptest_protocols.rs:
