/root/repo/target/debug/deps/mpca_circuits-e9cf4044e5ed5965.d: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_circuits-e9cf4044e5ed5965.rmeta: crates/circuits/src/lib.rs crates/circuits/src/builder.rs crates/circuits/src/circuit.rs crates/circuits/src/library.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/circuit.rs:
crates/circuits/src/library.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
