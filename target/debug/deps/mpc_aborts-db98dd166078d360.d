/root/repo/target/debug/deps/mpc_aborts-db98dd166078d360.d: src/lib.rs

/root/repo/target/debug/deps/libmpc_aborts-db98dd166078d360.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpc_aborts-db98dd166078d360.rmeta: src/lib.rs

src/lib.rs:
