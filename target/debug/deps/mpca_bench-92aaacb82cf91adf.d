/root/repo/target/debug/deps/mpca_bench-92aaacb82cf91adf.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmpca_bench-92aaacb82cf91adf.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
