/root/repo/target/debug/deps/mpca_engine-e21a685cc32fecd9.d: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_engine-e21a685cc32fecd9.rmeta: crates/engine/src/lib.rs crates/engine/src/backend.rs crates/engine/src/pool.rs crates/engine/src/report.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/backend.rs:
crates/engine/src/pool.rs:
crates/engine/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
