/root/repo/target/debug/deps/harness-209c31ba4893f011.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/libharness-209c31ba4893f011.rmeta: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
