/root/repo/target/debug/deps/mpca_net-8a1d1915e8432c6a.d: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

/root/repo/target/debug/deps/mpca_net-8a1d1915e8432c6a: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

crates/net/src/lib.rs:
crates/net/src/adversary.rs:
crates/net/src/crs.rs:
crates/net/src/envelope.rs:
crates/net/src/error.rs:
crates/net/src/party.rs:
crates/net/src/simulator.rs:
crates/net/src/stats.rs:
