/root/repo/target/debug/deps/mpca_wire-6d147429a670b3aa.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/libmpca_wire-6d147429a670b3aa.rlib: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/libmpca_wire-6d147429a670b3aa.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
