/root/repo/target/debug/deps/mpca_net-3298fe9c3c4d593f.d: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

/root/repo/target/debug/deps/libmpca_net-3298fe9c3c4d593f.rlib: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

/root/repo/target/debug/deps/libmpca_net-3298fe9c3c4d593f.rmeta: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

crates/net/src/lib.rs:
crates/net/src/adversary.rs:
crates/net/src/crs.rs:
crates/net/src/envelope.rs:
crates/net/src/error.rs:
crates/net/src/party.rs:
crates/net/src/simulator.rs:
crates/net/src/stats.rs:
