/root/repo/target/debug/deps/mpca_net-33906706cf04da68.d: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

/root/repo/target/debug/deps/libmpca_net-33906706cf04da68.rmeta: crates/net/src/lib.rs crates/net/src/adversary.rs crates/net/src/crs.rs crates/net/src/envelope.rs crates/net/src/error.rs crates/net/src/party.rs crates/net/src/simulator.rs crates/net/src/stats.rs

crates/net/src/lib.rs:
crates/net/src/adversary.rs:
crates/net/src/crs.rs:
crates/net/src/envelope.rs:
crates/net/src/error.rs:
crates/net/src/party.rs:
crates/net/src/simulator.rs:
crates/net/src/stats.rs:
