/root/repo/target/debug/deps/engine_batch-6f6dbca9136357ce.d: tests/engine_batch.rs

/root/repo/target/debug/deps/engine_batch-6f6dbca9136357ce: tests/engine_batch.rs

tests/engine_batch.rs:
