/root/repo/target/debug/deps/proptest_backends-23c674387b43854b.d: tests/proptest_backends.rs

/root/repo/target/debug/deps/proptest_backends-23c674387b43854b: tests/proptest_backends.rs

tests/proptest_backends.rs:
