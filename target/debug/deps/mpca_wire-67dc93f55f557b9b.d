/root/repo/target/debug/deps/mpca_wire-67dc93f55f557b9b.d: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

/root/repo/target/debug/deps/libmpca_wire-67dc93f55f557b9b.rmeta: crates/wire/src/lib.rs crates/wire/src/error.rs crates/wire/src/reader.rs crates/wire/src/traits.rs crates/wire/src/varint.rs crates/wire/src/writer.rs

crates/wire/src/lib.rs:
crates/wire/src/error.rs:
crates/wire/src/reader.rs:
crates/wire/src/traits.rs:
crates/wire/src/varint.rs:
crates/wire/src/writer.rs:
