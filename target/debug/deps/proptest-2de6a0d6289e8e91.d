/root/repo/target/debug/deps/proptest-2de6a0d6289e8e91.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-2de6a0d6289e8e91.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
