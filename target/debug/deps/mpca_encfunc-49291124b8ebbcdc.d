/root/repo/target/debug/deps/mpca_encfunc-49291124b8ebbcdc.d: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libmpca_encfunc-49291124b8ebbcdc.rmeta: crates/encfunc/src/lib.rs crates/encfunc/src/cost_model.rs crates/encfunc/src/hybrid.rs crates/encfunc/src/keygen.rs crates/encfunc/src/linear.rs crates/encfunc/src/signing.rs crates/encfunc/src/spec.rs Cargo.toml

crates/encfunc/src/lib.rs:
crates/encfunc/src/cost_model.rs:
crates/encfunc/src/hybrid.rs:
crates/encfunc/src/keygen.rs:
crates/encfunc/src/linear.rs:
crates/encfunc/src/signing.rs:
crates/encfunc/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
