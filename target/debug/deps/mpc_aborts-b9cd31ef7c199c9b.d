/root/repo/target/debug/deps/mpc_aborts-b9cd31ef7c199c9b.d: src/lib.rs

/root/repo/target/debug/deps/libmpc_aborts-b9cd31ef7c199c9b.rmeta: src/lib.rs

src/lib.rs:
