/root/repo/target/debug/deps/harness-6169b1f1ca576083.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-6169b1f1ca576083: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
