/root/repo/target/debug/deps/mpc_aborts-3b1d67d0c9feab65.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpc_aborts-3b1d67d0c9feab65.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
