/root/repo/target/debug/deps/mpca_bench-28bb759d79174142.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmpca_bench-28bb759d79174142.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libmpca_bench-28bb759d79174142.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
