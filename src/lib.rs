//! # mpc-aborts
//!
//! Communication-efficient **secure multi-party computation with selective
//! abort** over point-to-point networks — a Rust reproduction of
//! *"On the Communication Complexity of Secure Multi-Party Computation With
//! Aborts"* (Bartusek, Bergamaschi, Khoury, Mutreja, Paradise; PODC 2024).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`wire`] — canonical serialisation (the unit of communication
//!   complexity),
//! * [`crypto`] — from-scratch cryptographic substrates (SHA-256, ChaCha20,
//!   LWE encryption with threshold decryption, hash-based signatures, …),
//! * [`net`] — the synchronous point-to-point network simulator with a
//!   static malicious adversary and communication/locality accounting,
//! * [`circuits`] — boolean-circuit workloads,
//! * [`encfunc`] — the encrypted functionality `F[PKE, f]` of the paper,
//! * [`protocols`] — the paper's protocols (Theorems 1, 2 and 4, the
//!   baselines, and the Theorem 3 lower-bound attack),
//! * [`metrics`] — the metrics plane: a process-wide low-overhead registry
//!   (atomic counters, log₂ histograms, span timers) and the
//!   milestone-driven phase clock that attributes every charged byte and
//!   wall-microsecond to a protocol phase, with JSON + Prometheus
//!   exposition,
//! * [`trace`] — the trace plane: canonical digests over the simulator's
//!   structured event stream ([`TraceSummary`](trace::TraceSummary)),
//!   frame-tagged transcripts, and the `campaign --record` / `--replay`
//!   file format,
//! * [`predicate`] — the trace-predicate plane: a combinator language over
//!   frame-tagged transcripts (frame legality, per-phase byte ceilings,
//!   temporal rules, quantifiers) compiled into single-pass evaluators that
//!   report the first violating event span,
//! * [`engine`] — the batch-execution runtime: sequential/parallel
//!   round-stepping backends and a [`SessionPool`](engine::SessionPool) for
//!   running fleets of sessions concurrently with deterministic results,
//! * [`obs`] — the observability layer: an open-loop soak harness
//!   ([`run_soak`](obs::run_soak)) with bounded admission and windowed
//!   latency/throughput telemetry, Chrome trace-event span export
//!   ([`ChromeTrace`](obs::ChromeTrace)) for Perfetto, and the bench
//!   regression sentinel ([`run_sentinel`](obs::run_sentinel)) that diffs
//!   `BENCH_results.json` against a blessed baseline,
//! * [`scenario`] — declarative adversarial scenarios: adversary classes as
//!   data ([`AdversarySpec`](scenario::AdversarySpec)), campaign plans that
//!   compile into pooled batches, a security-property oracle checking every
//!   execution against the paper's predicates, and a coverage-guided
//!   adversary search ([`run_search`](scenario::run_search)) that shrinks
//!   novel predicate violations into replayable counterexamples.
//!
//! ## Quickstart
//!
//! ```
//! use mpc_aborts::net::{CommonRandomString, Simulator};
//! use mpc_aborts::encfunc::Functionality;
//! use mpc_aborts::protocols::{mpc, ExecutionPath, ProtocolParams};
//! use std::collections::BTreeSet;
//!
//! // 16 parties, at least 8 honest, privately sum their 2-byte inputs.
//! let params = ProtocolParams::new(16, 8).with_lwe(
//!     mpc_aborts::crypto::lwe::LweParams {
//!         plaintext_modulus: 1 << 16,
//!         ..mpc_aborts::crypto::lwe::LweParams::toy()
//!     },
//! );
//! let functionality = Functionality::Sum { input_bytes: 2 };
//! let inputs: Vec<Vec<u8>> = (0..16u16).map(|i| (i * 10).to_le_bytes().to_vec()).collect();
//! let crs = CommonRandomString::from_label(b"quickstart");
//! let parties = mpc::mpc_parties(
//!     &params, &functionality, ExecutionPath::Concrete, &inputs, crs, None, &BTreeSet::new(),
//! );
//! let result = Simulator::all_honest(params.n, parties).unwrap().run().unwrap();
//! let sum = u16::from_le_bytes(result.unanimous_output().unwrap()[..2].try_into().unwrap());
//! assert_eq!(sum, (0..16u16).map(|i| i * 10).sum());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpca_circuits as circuits;
pub use mpca_core as protocols;
pub use mpca_crypto as crypto;
pub use mpca_encfunc as encfunc;
pub use mpca_engine as engine;
pub use mpca_metrics as metrics;
pub use mpca_net as net;
pub use mpca_obs as obs;
pub use mpca_predicate as predicate;
pub use mpca_scenario as scenario;
pub use mpca_trace as trace;
pub use mpca_wire as wire;
