//! Tier-1 guarantees of the metrics plane:
//!
//! 1. **Ledger reconciliation** — for every traced session, the
//!    trace-derived [`PhaseLedger`](mpc_aborts::trace::PhaseLedger)
//!    reconciles byte-for-byte with the simulator's live phase accounting,
//!    and the per-phase sums conserve the `CommStats` totals.
//! 2. **Registry reconciliation** — with the metrics plane enabled, the
//!    `net.phase.bytes.*` counters the sessions flush into the global
//!    registry sum to exactly the bytes the reports charged.
//! 3. **Schema stability** — the emitted metrics JSON round-trips, and the
//!    checked-in schema fixture (`tests/golden/metrics_schema.json`) is in
//!    canonical form.

use std::sync::{Mutex, MutexGuard};

use mpc_aborts::engine::Sequential;
use mpc_aborts::metrics::{Phase, PhaseBytes, Registry, Snapshot};
use mpc_aborts::scenario::{tiny_campaign, tiny_sweep_campaign};

/// Serialises the tests that run sessions: the registry-reconciliation
/// test reads process-wide counters, so campaigns in other tests must not
/// flush into the registry concurrently while the plane is enabled.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn phase_ledger_reconciles_for_every_traced_session() {
    let _guard = serial();
    for campaign in [tiny_campaign(0), tiny_sweep_campaign(0)] {
        let report = campaign
            .run_traced(Sequential, 2)
            .expect("traced campaign runs");
        assert!(!report.is_empty());
        for outcome in &report.outcomes {
            let summary = outcome.report.trace.as_ref().expect("traced session");
            // The offline ledger (replaying the recorded trace through the
            // phase clock) must agree byte-for-byte with the live counters.
            assert_eq!(
                summary.phase_bytes, outcome.report.phase_bytes,
                "ledger/live divergence in {}",
                outcome.scenario.label
            );
            // Conservation: the six phase cells partition the total.
            assert_eq!(
                outcome.report.phase_bytes.total(),
                outcome.report.stats.total_bytes(),
                "unattributed bytes in {}",
                outcome.scenario.label
            );
        }
    }
}

#[test]
fn registry_phase_counters_reconcile_with_reports() {
    let _guard = serial();
    let baseline: Vec<u64> = Phase::ALL
        .into_iter()
        .map(|p| {
            Registry::global()
                .counter(&format!("net.phase.bytes.{p}"))
                .get()
        })
        .collect();
    let sessions_before = Registry::global().counter("net.sessions").get();

    mpc_aborts::metrics::set_enabled(true);
    let report = tiny_campaign(1).run(Sequential, 1).expect("campaign runs");
    mpc_aborts::metrics::set_enabled(false);

    let mut expected = PhaseBytes::new();
    for outcome in &report.outcomes {
        expected.merge(&outcome.report.phase_bytes);
    }
    for (i, phase) in Phase::ALL.into_iter().enumerate() {
        let after = Registry::global()
            .counter(&format!("net.phase.bytes.{phase}"))
            .get();
        assert_eq!(
            after - baseline[i],
            expected.get(phase),
            "registry flush diverges from live accounting in phase {phase}"
        );
    }
    assert_eq!(
        Registry::global().counter("net.sessions").get() - sessions_before,
        report.len() as u64,
    );
}

#[test]
fn metrics_snapshot_json_round_trips_live() {
    let _guard = serial();
    mpc_aborts::metrics::set_enabled(true);
    tiny_campaign(2).run(Sequential, 1).expect("campaign runs");
    mpc_aborts::metrics::set_enabled(false);
    let snapshot = Snapshot::capture();
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, value)| name == "net.sessions" && *value > 0),
        "the campaign must have flushed session counters"
    );
    let parsed = Snapshot::from_json(&snapshot.to_json()).expect("emitted JSON parses back");
    assert_eq!(parsed, snapshot);
}

#[test]
fn schema_fixture_is_canonical() {
    let fixture = include_str!("golden/metrics_schema.json");
    let parsed = Snapshot::from_json(fixture).expect("fixture parses");
    // Re-serialising the parsed fixture reproduces it byte-for-byte: the
    // fixture pins the canonical emission format.
    assert_eq!(parsed.to_json(), fixture, "fixture drifted from to_json()");
    // The fixture names the metric families the plane actually emits.
    for phase in Phase::ALL {
        assert!(parsed
            .counters
            .iter()
            .any(|(n, _)| *n == format!("net.phase.bytes.{phase}")));
    }
    for histogram in ["engine.session.wall_us", "engine.session.queue_us"] {
        assert!(parsed.histograms.iter().any(|(n, _)| n == histogram));
    }
    // Prometheus exposition covers every series.
    let prom = parsed.to_prometheus();
    assert!(prom.contains("# TYPE net_phase_bytes_sharing counter"));
    assert!(prom.contains("engine_session_wall_us_bucket{le=\"+Inf\"} 4"));
}
