//! Property tests for scenario determinism: the same `ScenarioPlan` and
//! seed must yield byte-identical `CommStats` and oracle verdicts whether
//! the campaign runs on the `Sequential` or the `Parallel` backend, at any
//! worker count — the scenario subsystem inherits (and must not break) the
//! engine's determinism guarantee.

use proptest::prelude::*;

use mpc_aborts::engine::{Parallel, Sequential};
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{
    AdversarySpec, Campaign, CampaignReport, CorruptionSpec, ScenarioPlan, TriggerSpec,
};

/// A small mixed campaign exercising seeded corruption, proxy-based
/// combinators and a triggered flood, parameterised by seed.
fn mixed_campaign(seed: u64) -> Campaign {
    Campaign::new("prop")
        .plan(
            ScenarioPlan::new(
                "bc",
                ProtocolKind::Broadcast,
                AdversarySpec::Equivocate {
                    corrupt: CorruptionSpec::Explicit(vec![0]),
                    victims: vec![2],
                },
            )
            .with_grid([(8, 7)])
            .with_seed(seed),
        )
        .plan(
            ScenarioPlan::new(
                "sum",
                ProtocolKind::UncheckedSum,
                AdversarySpec::Silent {
                    corrupt: CorruptionSpec::Seeded { count: 2 },
                },
            )
            .with_grid([(9, 7)])
            .with_seed(seed),
        )
        .plan(
            ScenarioPlan::new(
                "a2a",
                ProtocolKind::SuccinctAllToAll,
                AdversarySpec::Triggered {
                    base: Box::new(AdversarySpec::Flood {
                        corrupt: CorruptionSpec::Explicit(vec![1]),
                        victims: vec![],
                        junk_bytes: 512,
                        round_budget: Some(4),
                    }),
                    trigger: TriggerSpec::AtRound(1),
                },
            )
            .with_grid([(8, 7)])
            .with_seed(seed),
        )
}

fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport) {
    assert_eq!(a.verdict_digest(), b.verdict_digest());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        // SessionReport equality covers outcomes, structured abort reasons,
        // the full CommStats and the inbox high-water marks.
        assert_eq!(x.report, y.report, "scenario {}", x.scenario.label);
        assert_eq!(x.checks, y.checks, "scenario {}", x.scenario.label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn campaign_is_deterministic_across_backends(
        seed in any::<u64>(),
        workers in 1usize..5,
        threads in 2usize..5,
    ) {
        let campaign = mixed_campaign(seed);
        let sequential = campaign.run(Sequential, 1).expect("sequential campaign");
        let pooled_seq = campaign.run(Sequential, workers).expect("pooled sequential");
        let parallel = campaign
            .run(Parallel::with_threads(threads), workers)
            .expect("parallel campaign");
        assert_reports_identical(&sequential, &pooled_seq);
        assert_reports_identical(&sequential, &parallel);
    }
}
