//! Property tests for backend equivalence: for random sizes, inputs and
//! seeds, the `Parallel` backend must produce outcomes, round counts and
//! `CommStats` identical to the `Sequential` backend — the determinism
//! guarantee the `mpca-engine` session pool is built on.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::crypto::Prg;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::engine::{ExecutionBackend, Parallel, Sequential};
use mpc_aborts::net::{CommonRandomString, PartyId, PartyLogic, Simulator};
use mpc_aborts::protocols::{broadcast, equality, mpc, ExecutionPath, ProtocolParams};

/// Runs the same deterministic construction through both backends and
/// asserts bit-identical results.
fn assert_backends_agree<L, F>(
    build: F,
    threads: usize,
) -> Result<(), proptest::test_runner::TestCaseError>
where
    L: PartyLogic + Send,
    L::Output: Send + PartialEq + std::fmt::Debug,
    F: Fn() -> Simulator<L>,
{
    let sequential = Sequential.execute(build()).expect("sequential run");
    let parallel = Parallel::with_threads(threads)
        .execute(build())
        .expect("parallel run");
    prop_assert_eq!(&sequential.outcomes, &parallel.outcomes);
    prop_assert_eq!(&sequential.stats, &parallel.stats);
    prop_assert_eq!(sequential.rounds, parallel.rounds);
    // The message-plane high-water marks are part of the determinism
    // contract too: scheduling must not change what gets queued when.
    prop_assert_eq!(sequential.peak_inbox_bytes, parallel.peak_inbox_bytes);
    prop_assert_eq!(
        sequential.peak_inbox_envelopes,
        parallel.peak_inbox_envelopes
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn equality_backends_agree(
        len in 1usize..512,
        flip in any::<bool>(),
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        assert_backends_agree(
            || {
                let prg = Prg::from_seed_bytes(&seed.to_le_bytes());
                let mut a = prg.derive(b"data").gen_bytes(len);
                let b = a.clone();
                if flip {
                    a[len / 2] ^= 0x42;
                }
                let parties = vec![
                    equality::EqualityParty::new(PartyId(0), PartyId(1), 24, a, prg.derive(b"p0")),
                    equality::EqualityParty::new(PartyId(1), PartyId(0), 24, b, prg.derive(b"p1")),
                ];
                Simulator::all_honest(2, parties).unwrap()
            },
            threads,
        )?;
    }

    #[test]
    fn broadcast_backends_agree(
        n in 3usize..20,
        sender in 0usize..3,
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        threads in 2usize..6,
    ) {
        assert_backends_agree(
            || {
                let parties = broadcast::broadcast_parties(
                    n,
                    PartyId(sender % n),
                    payload.clone(),
                    &BTreeSet::new(),
                );
                Simulator::all_honest(n, parties).unwrap()
            },
            threads,
        )?;
    }

    #[test]
    fn mpc_backends_agree(
        n in 8usize..16,
        values in proptest::collection::vec(any::<u16>(), 16),
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let h = n / 2 + 1;
        let params = ProtocolParams::new(n, h).with_lwe(LweParams {
            plaintext_modulus: 1 << 16,
            ..LweParams::toy()
        });
        let inputs: Vec<Vec<u8>> = values[..n].iter().map(|v| v.to_le_bytes().to_vec()).collect();
        let functionality = Functionality::Sum { input_bytes: 2 };
        assert_backends_agree(
            || {
                let crs = CommonRandomString::from_label(&seed.to_le_bytes());
                let parties = mpc::mpc_parties(
                    &params,
                    &functionality,
                    ExecutionPath::Concrete,
                    &inputs,
                    crs,
                    None,
                    &BTreeSet::new(),
                );
                Simulator::all_honest(n, parties).unwrap()
            },
            threads,
        )?;
    }
}
