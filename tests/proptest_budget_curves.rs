//! Property tests for the golden-derived budget curves.
//!
//! 1. **No false alarms at scale:** every honest scenario of the sweep grid
//!    stays inside its tightened comm and locality envelopes, at *arbitrary*
//!    seeds — the sweep's CRS labels and committee draws differ from the
//!    calibration labels, so this exercises exactly the variance the curves'
//!    normalised-constant floor exists to absorb.
//! 2. **The alarms still fire:** a rigged report inflated to 3× the
//!    golden-measured envelope (and, for the protocols whose byte counts are
//!    seed-independent, 3× its own honest measurement) must be flagged
//!    `Violated` on the comm-budget predicate — and only on it.

use proptest::prelude::*;

use mpc_aborts::engine::{Sequential, SessionPool};
use mpc_aborts::net::{CommStats, PartyId};
use mpc_aborts::protocols::{ProtocolKind, BUDGET_SLACK};
use mpc_aborts::scenario::{
    registry, sweep_campaign, AdversarySpec, Oracle, Property, Scenario, ScenarioPlan, Verdict,
};

fn honest_sweep_scenarios(seed: u64) -> Vec<Scenario> {
    sweep_campaign(seed)
        .scenarios()
        .into_iter()
        .filter(|s| s.adversary == AdversarySpec::Honest)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn honest_sweep_scenarios_stay_inside_the_tightened_envelopes(seed in any::<u64>()) {
        let scenarios = honest_sweep_scenarios(seed);
        prop_assert!(scenarios.len() >= 30, "the sweep grids cover 30+ honest points");
        let mut pool = SessionPool::new(Sequential).with_workers(2);
        for scenario in &scenarios {
            registry::submit_scenario(&mut pool, scenario);
        }
        let batch = pool.run().expect("honest sweep scenarios run");
        for (scenario, report) in scenarios.into_iter().zip(batch.sessions) {
            let outcome = Oracle::new().evaluate(scenario, report);
            for property in [Property::CommBudget, Property::LocalityBudget] {
                let check = outcome.check(property);
                prop_assert!(
                    check.verdict == Verdict::Holds,
                    "{} at seed {}: {}",
                    outcome.scenario.label,
                    seed,
                    check.details
                );
            }
            prop_assert!(outcome.holds(), "{}", outcome.scenario.label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn an_inflated_run_is_flagged_violated_on_the_comm_budget(
        seed in any::<u64>(),
        pick in 0usize..ProtocolKind::ALL.len(),
    ) {
        let kind = ProtocolKind::ALL[pick];
        let &(n, h) = &kind.sweep_grid()[0];
        let scenario = ScenarioPlan::new("inflate", kind, AdversarySpec::Honest)
            .with_grid([(n, h)])
            .with_seed(seed)
            .scenarios()
            .remove(0);

        let mut pool = SessionPool::new(Sequential).with_workers(1);
        registry::submit_scenario(&mut pool, &scenario);
        let mut batch = pool.run().expect("honest control runs");
        let mut report = batch.sessions.remove(0);

        // Rig the statistics: one honest party "sent" 3× the golden
        // envelope (budget / slack) — or 3× the honest measurement itself
        // where byte counts are seed-independent, whichever is larger.
        let budget_bits = kind.comm_budget_bits(&scenario.params(), scenario.payload_bytes());
        let mut inflated_bytes = (3 * budget_bits).div_ceil(8 * BUDGET_SLACK) + 1;
        if !kind.crs_variant_traffic() {
            inflated_bytes = inflated_bytes.max(3 * report.stats.total_bytes());
        }
        let honest: Vec<PartyId> = report.outcomes.keys().copied().collect();
        prop_assert!(honest.len() >= 2);
        let mut rigged = CommStats::new();
        rigged.record_send(honest[0], honest[1], inflated_bytes as usize);
        rigged.set_rounds(report.rounds);
        report.stats = rigged;

        let outcome = Oracle::new().evaluate(scenario, report);
        prop_assert!(
            outcome.check(Property::CommBudget).verdict == Verdict::Violated,
            "{} bytes must overflow budget {} bits",
            inflated_bytes,
            budget_bits
        );
        // Only the comm budget fires: the outputs, abort reasons and
        // corruption set are untouched, and two parties talking keeps
        // locality at 1.
        for property in [
            Property::AgreementOrAbort,
            Property::IdentifiedAbort,
            Property::FloodingRule,
            Property::LocalityBudget,
        ] {
            prop_assert_eq!(outcome.check(property).verdict, Verdict::Holds);
        }
    }
}
