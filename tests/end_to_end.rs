//! Cross-crate integration tests: every protocol run end-to-end through the
//! public facade, honest and adversarial.

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::encfunc::{Functionality, MultiOutputFunctionality};
use mpc_aborts::net::{CommonRandomString, PartyId, SilentAdversary, SimConfig, Simulator};
use mpc_aborts::protocols::{
    all_to_all, local_mpc, lower_bound, mpc, multi_output, tradeoff, ExecutionPath, ProtocolParams,
};

fn sum_params(n: usize, h: usize) -> ProtocolParams {
    ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    })
}

fn sum_inputs(n: usize) -> (Vec<Vec<u8>>, Vec<u8>) {
    let values: Vec<u16> = (0..n as u16).map(|i| i * 41 + 3).collect();
    let inputs = values.iter().map(|v| v.to_le_bytes().to_vec()).collect();
    let total = values.iter().fold(0u16, |a, v| a.wrapping_add(*v));
    (inputs, total.to_le_bytes().to_vec())
}

#[test]
fn theorem_1_2_and_4_agree_on_the_same_workload() {
    let params = sum_params(40, 20);
    let functionality = Functionality::Sum { input_bytes: 2 };
    let (inputs, expected) = sum_inputs(params.n);

    // Theorem 1.
    let crs = CommonRandomString::from_label(b"it-thm1");
    let parties = mpc::mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );
    let r1 = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r1.unanimous_output(), Some(&expected));

    // Theorem 2.
    let crs = CommonRandomString::from_label(b"it-thm2");
    let parties =
        local_mpc::local_mpc_parties(&params, &functionality, &inputs, crs, &BTreeSet::new());
    let r2 = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r2.unanimous_output(), Some(&expected));

    // Theorem 4.
    let crs = CommonRandomString::from_label(b"it-thm4");
    let parties = tradeoff::tradeoff_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );
    let r4 = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r4.unanimous_output(), Some(&expected));

    // The qualitative shape of the bounds: Theorem 1 uses the least
    // communication; Theorem 2 stays within the sparse-graph degree (and in
    // particular below the clique the other protocols may use).
    assert!(r1.honest_bits() < r2.honest_bits());
    assert!(r2.honest_locality() <= params.sparse_degree() + params.sparse_in_bound());
    assert!(r2.honest_locality() < params.n - 1);
    assert!(r2.honest_locality() <= r1.honest_locality());
}

#[test]
fn committee_protocol_with_silent_adversary_is_correct_with_abort() {
    let params = sum_params(32, 20);
    let functionality = Functionality::Sum { input_bytes: 2 };
    let (inputs, _) = sum_inputs(params.n);
    let corrupted: BTreeSet<PartyId> = (0..8).map(PartyId).collect();
    let honest_total: u16 = inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| !corrupted.contains(&PartyId(*i)))
        .fold(0u16, |a, (_, v)| {
            a.wrapping_add(u16::from_le_bytes([v[0], v[1]]))
        });
    let crs = CommonRandomString::from_label(b"it-silent");
    let parties = mpc::mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &corrupted,
    );
    let result = Simulator::new(
        params.n,
        parties,
        Box::new(SilentAdversary::new(corrupted)),
        SimConfig::default(),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(result.correct_or_aborted(&honest_total.to_le_bytes().to_vec()));
}

#[test]
fn hybrid_path_supports_general_circuits() {
    use mpc_aborts::circuits::library;
    let params = ProtocolParams::new(12, 6);
    // Majority vote over one-bit inputs packed into bytes.
    let circuit = library::sum_mod(params.n, 8);
    let functionality = Functionality::Circuit {
        circuit,
        input_bytes: 1,
    };
    let inputs: Vec<Vec<u8>> = (0..params.n).map(|i| vec![(i % 5) as u8]).collect();
    let expected = functionality.evaluate(&inputs);
    let crs = CommonRandomString::from_label(b"it-circuit");
    let host = mpc::hybrid_host(&params, &functionality, &crs);
    let parties = mpc::mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Hybrid,
        &inputs,
        crs,
        Some(host),
        &BTreeSet::new(),
    );
    let result = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(result.unanimous_output(), Some(&expected));
}

#[test]
fn multi_output_auction_end_to_end() {
    let params = ProtocolParams::new(12, 6);
    let functionality = MultiOutputFunctionality::VickreyAuction { input_bytes: 2 };
    let bids: Vec<u16> = vec![50, 900, 220, 430, 75, 310, 640, 120, 845, 15, 505, 280];
    let inputs: Vec<Vec<u8>> = bids.iter().map(|b| b.to_le_bytes().to_vec()).collect();
    let expected = functionality.evaluate(&inputs);
    let crs = CommonRandomString::from_label(b"it-auction");
    let host = multi_output::multi_output_host(&params, &functionality, &crs);
    let parties = multi_output::multi_output_parties(
        &params,
        &functionality,
        &inputs,
        crs,
        host,
        &BTreeSet::new(),
    );
    let result = Simulator::all_honest(params.n, parties)
        .unwrap()
        .run()
        .unwrap();
    assert!(!result.any_abort());
    for id in PartyId::all(params.n) {
        assert_eq!(
            result.outcome_of(id).unwrap().output(),
            Some(&expected[id.index()])
        );
    }
}

#[test]
fn succinct_all_to_all_beats_naive_baseline() {
    let n = 16;
    let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
    let naive = Simulator::all_honest(n, all_to_all::naive_parties(&inputs, &BTreeSet::new()))
        .unwrap()
        .run()
        .unwrap();
    let succinct = Simulator::all_honest(
        n,
        all_to_all::succinct_parties(&inputs, 24, b"it-a2a", &BTreeSet::new()),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(naive.unanimous_output(), succinct.unanimous_output());
    assert!(succinct.honest_bits() * 2 < naive.honest_bits());
}

#[test]
fn lower_bound_attack_thresholds() {
    // Below the Ω(n/h) locality threshold the isolation attack succeeds with
    // noticeable probability; well above it, it practically never does.
    let (iso_low, _) = lower_bound::isolation_attack_rate(48, 6, 2, 40, b"it-lb-low");
    let (iso_high, _) = lower_bound::isolation_attack_rate(48, 6, 40, 40, b"it-lb-high");
    assert!(iso_low > 0.3, "low-budget isolation rate {iso_low}");
    assert!(iso_high < 0.1, "high-budget isolation rate {iso_high}");
}

#[test]
fn communication_scaling_matches_theorem_1_shape() {
    // n fixed, h doubled repeatedly: Õ(n²/h) predicts roughly halving bits.
    let functionality = Functionality::Sum { input_bytes: 2 };
    let mut previous: Option<u64> = None;
    for h in [8usize, 16, 32, 64] {
        let params = sum_params(64, h);
        let (inputs, expected) = sum_inputs(params.n);
        let crs = CommonRandomString::from_label(format!("it-scaling-{h}").as_bytes());
        let parties = mpc::mpc_parties(
            &params,
            &functionality,
            ExecutionPath::Concrete,
            &inputs,
            crs,
            None,
            &BTreeSet::new(),
        );
        let result = Simulator::all_honest(params.n, parties)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.unanimous_output(), Some(&expected));
        let bits = result.honest_bits();
        if let Some(prev) = previous {
            assert!(
                bits < prev,
                "communication should decrease as h grows: {bits} !< {prev} at h={h}"
            );
        }
        previous = Some(bits);
    }
}
