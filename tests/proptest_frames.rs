//! Property tests for the per-protocol frame schemas: for random messages
//! of **every protocol family**, framing must be lossless
//! (decode → re-assemble is byte-identical) and tampering must be surgical
//! (exactly the targeted field's bytes change, and the tampered buffer
//! still frames with the same tag) — the two invariants framing-aware
//! equivocation and trace tagging rely on.

use proptest::prelude::*;

use mpc_aborts::crypto::fingerprint::{EqualityChallenge, EqualityResponse};
use mpc_aborts::crypto::lwe::LweCiphertext;
use mpc_aborts::crypto::Prg;
use mpc_aborts::net::PartyId;
use mpc_aborts::protocols::{
    all_to_all::SuccinctMsg, broadcast::BroadcastMsg, committee::CommitteeMsg, gossip::GossipMsg,
    mpc::MpcMsg, FrameSchema, ProtocolKind,
};
use mpc_aborts::wire::TAMPER_MASK;

/// Checks the two frame invariants on one encoded message, and exercises
/// every tamperable field.
fn assert_frame_invariants(kind: ProtocolKind, bytes: &[u8]) {
    let schema = FrameSchema::new(kind);
    let frame = schema
        .decode(bytes)
        .unwrap_or_else(|| panic!("{kind}: message must frame: {bytes:?}"));
    // Lossless: the field spans tile the buffer and re-assembly is the
    // identity.
    assert!(
        frame.covers_exactly(),
        "{kind}/{}: spans must tile",
        frame.tag
    );
    assert_eq!(
        frame.reassemble(bytes).as_deref(),
        Some(bytes),
        "{kind}/{}: decode -> re-encode must be byte-identical",
        frame.tag
    );
    // Surgical tampering: for every tamperable field, exactly that span's
    // bytes change (by the fixed mask) and the result still frames with
    // the same tag.
    for field in frame.tamperable_fields() {
        let tampered = schema
            .tamper(bytes, frame.tag, field)
            .unwrap_or_else(|| panic!("{kind}/{}: field {field} must tamper", frame.tag));
        assert_eq!(tampered.len(), bytes.len(), "length (and charge) preserved");
        let span = frame.field(field).expect("named field exists");
        for (i, (a, b)) in bytes.iter().zip(&tampered).enumerate() {
            if i >= span.start && i < span.end {
                assert_eq!(*b, a ^ TAMPER_MASK, "byte {i} inside {field}");
            } else {
                assert_eq!(b, a, "byte {i} outside {field} must not change");
            }
        }
        let reframed = schema
            .decode(&tampered)
            .unwrap_or_else(|| panic!("{kind}/{}: tampered {field} must still frame", frame.tag));
        assert_eq!(
            reframed.tag, frame.tag,
            "tampering {field} must not change the variant"
        );
    }
}

fn challenge(seed: u64) -> EqualityChallenge {
    EqualityChallenge::new(
        &mut Prg::from_seed_bytes(&seed.to_le_bytes()),
        16,
        &seed.to_le_bytes(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mpc_frames_are_lossless_and_tamper_surgically(
        words in proptest::collection::vec(any::<u64>(), 1..8),
        body in proptest::collection::vec(any::<u8>(), 0..48),
        c2 in any::<u64>(),
        seed in any::<u64>(),
        equal in any::<bool>(),
    ) {
        let ct = LweCiphertext { chunks: vec![(words.clone(), c2)] };
        let msgs = [
            MpcMsg::PublicKey(words.clone()),
            MpcMsg::Keygen(mpc_aborts::encfunc::keygen::KeygenContribution { b: words.clone() }),
            MpcMsg::Filler(body.clone()),
            MpcMsg::InputCt(ct),
            MpcMsg::CtChallenge(challenge(seed)),
            MpcMsg::CtResponse(EqualityResponse { equal }),
            MpcMsg::Partial(mpc_aborts::crypto::threshold::PartialDecryption {
                values: words.clone(),
            }),
            MpcMsg::Output(body.clone()),
        ];
        for msg in msgs {
            // Both checked MPC families share the MpcMsg framing.
            assert_frame_invariants(ProtocolKind::Theorem1Mpc, &mpc_aborts::wire::to_bytes(&msg));
            assert_frame_invariants(
                ProtocolKind::Theorem4Tradeoff,
                &mpc_aborts::wire::to_bytes(&msg),
            );
        }
    }

    #[test]
    fn committee_broadcast_a2a_gossip_frames_hold(
        body in proptest::collection::vec(any::<u8>(), 0..48),
        source in 0usize..64,
        seed in any::<u64>(),
        equal in any::<bool>(),
        value in any::<u64>(),
    ) {
        for msg in [
            CommitteeMsg::Elected,
            CommitteeMsg::Challenge(challenge(seed)),
            CommitteeMsg::Response(EqualityResponse { equal }),
        ] {
            assert_frame_invariants(ProtocolKind::Theorem1Mpc, &mpc_aborts::wire::to_bytes(&msg));
        }
        for msg in [
            BroadcastMsg::Send(body.clone()),
            BroadcastMsg::Echo(None),
            BroadcastMsg::Echo(Some(body.clone())),
        ] {
            assert_frame_invariants(ProtocolKind::Broadcast, &mpc_aborts::wire::to_bytes(&msg));
        }
        for msg in [
            SuccinctMsg::Input(body.clone()),
            SuccinctMsg::Challenge(challenge(seed)),
            SuccinctMsg::Response(EqualityResponse { equal }),
        ] {
            assert_frame_invariants(
                ProtocolKind::SuccinctAllToAll,
                &mpc_aborts::wire::to_bytes(&msg),
            );
        }
        for msg in [
            GossipMsg::Rumor {
                source: PartyId(source),
                value: body.clone().into(),
            },
            GossipMsg::Warning,
        ] {
            assert_frame_invariants(
                ProtocolKind::Theorem2LocalMpc,
                &mpc_aborts::wire::to_bytes(&msg),
            );
        }
        // The unchecked sum's bare u64 value.
        assert_frame_invariants(ProtocolKind::UncheckedSum, &mpc_aborts::wire::to_bytes(&value));
    }
}
