//! Trace-plane acceptance tests: record/replay determinism across
//! backends, framing-aware equivocation flagged as an identified abort
//! (never a parse error), milestone-armed triggers, and flood junk tagged
//! distinctly enough to recompute the exclusion logic from the trace alone.

use std::collections::BTreeSet;

use mpc_aborts::engine::{Parallel, Sequential};
use mpc_aborts::net::{AbortReason, MilestoneKind, PartyId};
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{
    tiny_sweep_campaign, AdversarySpec, Campaign, CorruptionSpec, Expectation, Property,
    ScenarioPlan, TriggerSpec, Verdict,
};
use mpc_aborts::trace::TraceFile;

#[test]
fn tiny_sweep_records_and_replays_byte_identically_across_backends() {
    let campaign = tiny_sweep_campaign(0);
    let sequential = campaign
        .run_traced(Sequential, 1)
        .expect("sequential traced sweep");
    let parallel = campaign
        .run_traced(Parallel::with_threads(2), 3)
        .expect("parallel traced sweep");
    assert!(sequential.all_as_expected(), "{}", sequential.render());

    // Every session carries a trace summary, and the summaries (digests
    // over the full event stream) are identical across backends.
    let recorded = TraceFile::new("sweep-tiny", 0, "sequential", sequential.trace_summaries());
    assert_eq!(recorded.sessions.len(), sequential.len());
    assert!(recorded.sessions.iter().all(|r| r.digest.len() == 64));
    let mismatches = recorded.compare(parallel.trace_summaries());
    assert!(
        mismatches.is_empty(),
        "parallel replay must reproduce every digest: {mismatches:?}"
    );

    // The file round-trips through its rendered form.
    let parsed = TraceFile::parse(&recorded.render()).expect("rendered file parses");
    assert_eq!(parsed, recorded);
    // A corrupted digest is caught.
    let mut corrupted = recorded.clone();
    corrupted.sessions[0].digest = "0".repeat(64);
    assert_eq!(corrupted.compare(parallel.trace_summaries()).len(), 1);
}

#[test]
fn frame_equivocation_on_checked_mpc_is_an_identified_abort_not_a_parse_error() {
    let campaign = Campaign::new("eqframe").plan(
        ScenarioPlan::new(
            "t1",
            ProtocolKind::Theorem1Mpc,
            AdversarySpec::EquivocateFrame {
                corrupt: CorruptionSpec::Explicit(vec![0]),
                victims: vec![1, 2, 3],
                tag: "mpc:input-ct".into(),
                field: "c2.0".into(),
            },
        )
        .with_grid([(12, 6)])
        .with_seed(0)
        .expecting(Expectation::DetectsEquivocation),
    );
    let report = campaign
        .run_traced(Parallel::with_threads(2), 1)
        .expect("campaign executes");
    assert!(report.all_as_expected(), "{}", report.render());
    let outcome = &report.outcomes[0];

    // The attack was caught by verification, not by the parser: at least
    // one detection abort, zero Malformed aborts.
    assert!(
        !outcome.report.abort_reasons.is_empty(),
        "the split ciphertext view must force aborts"
    );
    assert!(outcome.report.abort_reasons.values().any(|r| matches!(
        r,
        AbortReason::EqualityTestFailed(_) | AbortReason::Equivocation(_)
    )));
    assert!(
        !outcome
            .report
            .abort_reasons
            .values()
            .any(|r| matches!(r, AbortReason::Malformed(_))),
        "a framing-aware tamper must never fail parsing: {:?}",
        outcome.report.abort_reasons
    );

    // The identified-abort predicate ran behaviourally (trace-derived
    // reasons agree with the report's) and holds.
    let trace = outcome.report.trace.as_ref().expect("traced run");
    assert_eq!(trace.aborts, outcome.report.abort_reasons);
    assert_eq!(
        outcome.check(Property::IdentifiedAbort).verdict,
        Verdict::Holds
    );
    assert!(
        outcome
            .check(Property::IdentifiedAbort)
            .details
            .contains("trace milestone"),
        "the traced predicate must cite the trace: {}",
        outcome.check(Property::IdentifiedAbort).details
    );
}

#[test]
fn milestone_trigger_arms_exactly_at_the_committee_announcement() {
    let campaign = Campaign::new("mstone").plan(
        ScenarioPlan::new(
            "t1",
            ProtocolKind::Theorem1Mpc,
            AdversarySpec::Triggered {
                base: Box::new(AdversarySpec::Flood {
                    corrupt: CorruptionSpec::Explicit(vec![0]),
                    victims: vec![],
                    junk_bytes: 512,
                    round_budget: Some(2),
                }),
                trigger: TriggerSpec::AtMilestone(MilestoneKind::CommitteeAnnounced),
            },
        )
        .with_grid([(12, 6)])
        .with_seed(3),
    );
    let report = campaign.run_traced(Sequential, 1).expect("campaign runs");
    assert!(report.all_as_expected(), "{}", report.render());
    let outcome = &report.outcomes[0];
    let trace = outcome.report.trace.as_ref().expect("traced run");
    assert!(
        trace.injected_sends > 0,
        "the milestone-armed flood must have fired"
    );
    // The flood's junk is never charged and honest parties abort on it —
    // the standard flooding guarantees, now under a protocol-aware trigger.
    assert_eq!(
        outcome.check(Property::FloodingRule).verdict,
        Verdict::Holds
    );
    assert!(outcome.report.any_abort());
}

#[test]
fn injected_junk_is_tagged_so_exclusions_recompute_from_the_trace_alone() {
    // Run a flood scenario directly (not through the campaign) so the raw
    // TraceLog is available for recomputation.
    use mpc_aborts::net::{FloodAdversary, SimConfig, Simulator};
    use mpc_aborts::protocols::broadcast;

    let n = 8;
    let corrupted: BTreeSet<PartyId> = [PartyId(7)].into();
    let parties = broadcast::broadcast_parties(n, PartyId(0), vec![0xAB; 24], &corrupted);
    let adversary = FloodAdversary::new(corrupted.clone(), PartyId::all(n - 1), 333);
    let mut sim = Simulator::new(n, parties, Box::new(adversary), SimConfig::default())
        .expect("valid configuration");
    sim.record_trace();
    let result = sim.run().expect("execution completes");
    let trace = result.trace.as_ref().expect("trace recorded");

    let honest: BTreeSet<PartyId> = result.outcomes.keys().copied().collect();
    assert!(trace.injected_sends() > 0, "the flood injected junk");
    // The injected tag makes the flooding exclusions recomputable from the
    // trace alone: honest bytes and honest-to-honest locality derived from
    // the trace equal the simulator's charged statistics.
    assert_eq!(trace.honest_bytes(), result.stats.total_bytes());
    assert_eq!(
        trace.max_locality_within(&honest),
        result.stats.max_locality_within(&honest)
    );
    // And the milestone stream carries each party's terminal record.
    assert_eq!(
        trace.abort_reasons().len() + trace.decided_parties().len(),
        honest.len()
    );
}
