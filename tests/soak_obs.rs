//! End-to-end observability through the facade: a short open-loop soak
//! over the mixed scenario workload, Chrome trace-event span export, and
//! the regression sentinel's pass/fail contract against the checked-in
//! baseline and drift fixtures.

use std::time::Duration;

use mpc_aborts::engine::Sequential;
use mpc_aborts::obs::sentinel::Json;
use mpc_aborts::obs::{run_sentinel, run_soak, SoakConfig};
use mpc_aborts::scenario::SoakWorkload;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn soak_emits_windowed_time_series_and_perfetto_spans() {
    let workload = SoakWorkload::new(5);
    let config = SoakConfig::new(Duration::from_millis(1500), 120.0)
        .with_workers(2)
        .with_capacity(8)
        .with_seed(5)
        .with_window(Duration::from_millis(500));
    let report = run_soak(&config, &Sequential, |index| workload.task(index));

    assert_eq!(report.errors, 0, "soak sessions execute cleanly");
    assert!(report.completed > 0, "soak completes sessions");
    assert!(report.windows.len() >= 2, "multiple telemetry windows");
    assert_eq!(report.admitted + report.shed, report.arrivals);

    // The time series is valid JSON under the soak schema, with one entry
    // per window.
    let doc = Json::parse(&report.to_json()).expect("soak JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mpc-aborts/soak/v1")
    );
    let windows = doc
        .get("windows")
        .and_then(Json::as_array)
        .expect("windows array");
    assert_eq!(windows.len(), report.windows.len());
    for window in windows {
        for key in ["arrivals", "shed", "wall_p99_us", "scenarios_per_s"] {
            assert!(window.get(key).is_some(), "window lacks {key}");
        }
    }

    // The span export is valid Chrome trace-event JSON: sampled sessions
    // appear as complete ("X") spans with queue/exec children.
    let trace = Json::parse(&report.chrome_trace().render()).expect("trace JSON parses");
    assert_eq!(
        trace.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "sampled sessions export spans");
    let queue_spans = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("queue"))
        .count();
    let exec_spans = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("exec"))
        .count();
    assert_eq!(queue_spans, report.sampled.len());
    assert_eq!(exec_spans, report.sampled.len());
}

#[test]
fn sustained_overload_sheds_at_the_admission_queue() {
    let workload = SoakWorkload::new(9);
    // Arrivals far above what one worker drains through a one-slot queue.
    let config = SoakConfig::new(Duration::from_millis(600), 2000.0)
        .with_workers(1)
        .with_capacity(1)
        .with_seed(9)
        .with_window(Duration::from_millis(200));
    let report = run_soak(&config, &Sequential, |index| workload.task(index));
    assert!(report.shed > 0, "overload must shed: {:?}", report.windows);
    assert!(report.admitted > 0, "overload still admits");
    let shed_in_windows: u64 = report.windows.iter().map(|w| w.shed).sum();
    assert_eq!(
        shed_in_windows, report.shed,
        "shed is attributed to windows"
    );
}

#[test]
fn sentinel_passes_the_blessed_baseline_and_trips_on_drift() {
    let baseline = golden("bench_baseline.json");
    let results = {
        let path = format!("{}/BENCH_results.json", env!("CARGO_MANIFEST_DIR"));
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
    };
    let clean = run_sentinel(&results, &baseline).expect("sentinel runs on checked-in results");
    assert!(
        clean.passed(),
        "checked-in results must pass the blessed baseline:\n{}",
        clean.render()
    );

    let drifted = golden("bench_drift_fixture.json");
    let tripped = run_sentinel(&drifted, &baseline).expect("sentinel runs on the drift fixture");
    assert!(
        !tripped.passed(),
        "the injected 2x p99 drift must trip the sentinel:\n{}",
        tripped.render()
    );
}
