//! The golden calibration sweep behind the budget curves.
//!
//! Runs every protocol family **honestly** over its full calibration grid
//! (`ProtocolKind::calibration_grid`), under `CALIBRATION_SEEDS` distinct
//! seeds per point, and records the measured envelope (max honest bits and
//! max per-party locality) per point. The rendered fixture must match
//! `tests/golden/comm_budget_curves.json` byte-for-byte — that file is what
//! `mpca_core::BudgetCurve` turns into the oracle's tightened comm/locality
//! budgets.
//!
//! Regenerate after an intentional protocol change with:
//!
//! ```sh
//! MPCA_BLESS=1 cargo test --test golden_budget_curves
//! cargo test   # re-run: budgets are read from the fresh fixture
//! ```
//!
//! When not blessing, the test also proves the curves are *usable*: every
//! measured point sits inside its curve budget (no false alarms) and every
//! curve budget sits strictly inside the legacy ~10× hand-calibrated
//! constants (a real tightening).

use std::collections::BTreeSet;

use mpc_aborts::engine::{Sequential, SessionPool, SessionReport};
use mpc_aborts::net::PartyId;
use mpc_aborts::protocols::{BudgetCurve, ProtocolKind, ProtocolParams};
use mpc_aborts::scenario::{registry, AdversarySpec, ScenarioPlan};

/// Seeds each calibration point is measured under; the fixture records the
/// max. Committee-based families legitimately vary across CRS labels, so a
/// single-label measurement would under-estimate the envelope.
const CALIBRATION_SEEDS: u64 = 3;

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/comm_budget_curves.json"
);

/// One measured calibration point, pre-envelope.
struct Measured {
    kind: ProtocolKind,
    n: usize,
    h: usize,
    payload_bytes: usize,
    honest_bits: u64,
    max_locality: usize,
}

fn honest_bits_of(report: &SessionReport) -> u64 {
    let honest: BTreeSet<PartyId> = report.outcomes.keys().copied().collect();
    report.stats.bytes_sent_by(&honest) * 8
}

fn locality_of(report: &SessionReport) -> usize {
    let honest: BTreeSet<PartyId> = report.outcomes.keys().copied().collect();
    report.stats.max_locality_within(&honest)
}

/// Runs the whole calibration sweep as one pooled batch and folds the
/// per-seed measurements into per-point envelopes, in fixture order.
fn measure_calibration_sweep() -> Vec<Measured> {
    let mut pool = SessionPool::new(Sequential).with_workers(2);
    let mut layout = Vec::new();
    for kind in ProtocolKind::ALL {
        for (n, h) in kind.calibration_grid() {
            for seed in 0..CALIBRATION_SEEDS {
                let plan = ScenarioPlan::new(
                    format!("cal{seed}-{}", kind.name()),
                    kind,
                    AdversarySpec::Honest,
                )
                .with_grid([(n, h)])
                .with_seed(seed);
                let scenario = plan.scenarios().remove(0);
                let payload = scenario.payload_bytes();
                registry::submit_scenario(&mut pool, &scenario);
                layout.push((kind, n, h, payload));
            }
        }
    }
    let batch = pool.run().expect("calibration sweep executes");
    assert_eq!(batch.sessions.len(), layout.len());

    let mut measured: Vec<Measured> = Vec::new();
    for ((kind, n, h, payload_bytes), report) in layout.into_iter().zip(&batch.sessions) {
        assert!(
            !report.any_abort(),
            "calibration runs are honest; {} aborted",
            report.label
        );
        let bits = honest_bits_of(report);
        let locality = locality_of(report);
        match measured
            .iter_mut()
            .find(|m| m.kind == kind && m.n == n && m.h == h)
        {
            Some(point) => {
                point.honest_bits = point.honest_bits.max(bits);
                point.max_locality = point.max_locality.max(locality);
            }
            None => measured.push(Measured {
                kind,
                n,
                h,
                payload_bytes,
                honest_bits: bits,
                max_locality: locality,
            }),
        }
    }
    measured
}

/// Renders the fixture in the stable line-oriented JSON shape
/// `mpca_core::catalog` parses.
fn render_fixture(points: &[Measured]) -> String {
    let lines: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"protocol\":\"{}\",\"n\":{},\"h\":{},\"payload_bytes\":{},\
                 \"honest_bits\":{},\"max_locality\":{}}}",
                p.kind.name(),
                p.n,
                p.h,
                p.payload_bytes,
                p.honest_bits,
                p.max_locality
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"mpc-aborts/comm-budget-curves/v1\",\n  \"slack\": {},\n  \
         \"calibration_seeds\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        mpc_aborts::protocols::BUDGET_SLACK,
        CALIBRATION_SEEDS,
        lines.join(",\n")
    )
}

#[test]
fn budget_curves_match_the_golden_calibration_sweep() {
    let measured = measure_calibration_sweep();
    let rendered = render_fixture(&measured);

    if std::env::var_os("MPCA_BLESS").is_some() {
        std::fs::write(FIXTURE_PATH, &rendered).expect("write golden fixture");
        eprintln!("blessed {FIXTURE_PATH}; re-run tests so budgets reload");
        return;
    }

    let golden = std::fs::read_to_string(FIXTURE_PATH).expect("golden fixture is checked in");
    assert_eq!(
        rendered, golden,
        "calibration sweep diverged from the golden fixture; regenerate \
         with MPCA_BLESS=1 if the protocol change is intentional"
    );

    // The curves derived from these goldens must (a) admit every measured
    // honest envelope — no false alarms — and (b) sit strictly inside the
    // legacy hand constants — a real tightening.
    for point in &measured {
        let params = ProtocolParams::new(point.n, point.h);
        let curve = BudgetCurve::for_kind(point.kind).expect("fixture is loaded");
        let budget = curve.comm_budget_bits(&params, point.payload_bytes);
        let legacy = point
            .kind
            .fallback_budget_bits(&params, point.payload_bytes);
        assert!(
            point.honest_bits <= budget,
            "{} (n={}, h={}): measured {} bits above curve budget {}",
            point.kind,
            point.n,
            point.h,
            point.honest_bits,
            budget
        );
        assert!(
            budget < legacy,
            "{} (n={}, h={}): curve budget {} not tighter than legacy {}",
            point.kind,
            point.n,
            point.h,
            budget,
            legacy
        );

        let locality_budget = curve.locality_budget(&params);
        assert!(
            point.max_locality <= locality_budget,
            "{} (n={}, h={}): measured locality {} above budget {}",
            point.kind,
            point.n,
            point.h,
            point.max_locality,
            locality_budget
        );
        assert!(locality_budget < point.n);
    }
}
