//! Scenario-subsystem acceptance tests: the standard campaign holds
//! everywhere except its rigged control, the oracle flags that control, and
//! abort reasons are recorded structurally end-to-end.

use mpc_aborts::engine::Parallel;
use mpc_aborts::net::{AbortReason, PartyId};
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{
    standard_campaign, AdversarySpec, Campaign, CorruptionSpec, Expectation, Property,
    ScenarioPlan, Verdict,
};

#[test]
fn standard_campaign_passes_and_flags_its_control() {
    let report = standard_campaign(42)
        .run(Parallel::with_threads(2), 4)
        .expect("campaign executes");
    assert!(report.len() >= 12, "acceptance requires >= 12 scenarios");
    assert!(
        report.all_as_expected(),
        "every verdict must match its expectation:\n{}",
        report.render()
    );

    // Exactly the rigged controls are violated: the verification-free sum
    // under equivocation (agreement) and the charged flood (flooding rule).
    let violations = report.violations();
    assert_eq!(violations.len(), 2, "exactly the controls are violated");

    let agreement_control = violations
        .iter()
        .find(|o| o.scenario.expectation == Expectation::ViolatesAgreement)
        .expect("the agreement control is flagged");
    assert_eq!(agreement_control.scenario.kind, ProtocolKind::UncheckedSum);
    assert!(agreement_control.agreement_violated());
    assert_eq!(
        agreement_control.check(Property::FloodingRule).verdict,
        Verdict::Holds
    );
    assert_eq!(
        agreement_control.check(Property::CommBudget).verdict,
        Verdict::Holds
    );

    let flooding_control = violations
        .iter()
        .find(|o| o.scenario.expectation == Expectation::ViolatesFloodingRule)
        .expect("the flooding control is flagged");
    assert!(flooding_control.scenario.charge_adversary_bytes);
    assert_eq!(
        flooding_control.check(Property::FloodingRule).verdict,
        Verdict::Violated
    );
    assert!(!flooding_control.agreement_violated());
}

#[test]
fn silent_broadcast_sender_yields_identified_missing_message_aborts() {
    // Corrupting the broadcast sender silently must make every receiver
    // abort — and the scenario report must say *why*, structurally.
    let campaign = Campaign::new("silent-sender").plan(
        ScenarioPlan::new(
            "bc",
            ProtocolKind::Broadcast,
            AdversarySpec::Silent {
                corrupt: CorruptionSpec::Explicit(vec![0]),
            },
        )
        .with_grid([(8, 7)]),
    );
    let report = campaign.run(Parallel::with_threads(2), 2).unwrap();
    assert!(report.all_as_expected(), "{}", report.render());
    let outcome = &report.outcomes[0];
    assert_eq!(outcome.report.abort_reasons.len(), 7, "all receivers abort");
    for id in 1..8 {
        assert!(
            matches!(
                outcome.report.abort_reason_of(PartyId(id)),
                Some(AbortReason::MissingMessage(_))
            ),
            "party {id} must record a MissingMessage abort, got {:?}",
            outcome.report.abort_reason_of(PartyId(id))
        );
    }
}

#[test]
fn withholding_forces_selective_aborts_without_breaking_agreement() {
    // The attack the paper's "with aborts" model is about: withholding
    // splits honest parties into some that output and some that abort, but
    // never into disagreement.
    let campaign = Campaign::new("withhold").plan(
        ScenarioPlan::new(
            "t1",
            ProtocolKind::Theorem1Mpc,
            AdversarySpec::Withhold {
                corrupt: CorruptionSpec::Explicit(vec![0]),
                recipients: vec![2, 3],
            },
        )
        .with_grid([(16, 15)]),
    );
    let report = campaign.run(Parallel::with_threads(2), 2).unwrap();
    assert!(report.all_as_expected(), "{}", report.render());
    let outcome = &report.outcomes[0];
    assert!(
        !outcome.report.abort_reasons.is_empty(),
        "withholding must force at least one abort"
    );
    assert_eq!(
        outcome.check(Property::AgreementOrAbort).verdict,
        Verdict::Holds
    );
}
