//! Property tests for the trace-predicate plane (`mpca-predicate`) as the
//! oracle and search loop consume it: honest executions of **every**
//! protocol family satisfy the family's full predicate set at any seed on
//! any backend, while the rigged controls — an equivocated unchecked sum, a
//! charged flood — violate **exactly** their intended predicate, with a
//! meaningful first-violation event span.

use proptest::prelude::*;

use mpc_aborts::engine::{ExecutionBackend, Parallel, Sequential, SessionPool, SessionReport};
use mpc_aborts::predicate::{eval_set, full_set, SetViolation};
use mpc_aborts::protocols::{ExecutionPath, ProtocolKind};
use mpc_aborts::scenario::{
    registry, AdversarySpec, CorruptionSpec, Expectation, Scenario, TriggerSpec,
};
use mpc_aborts::trace::TaggedTrace;

/// Builds one concrete scenario at the family's smallest sweep grid point.
fn scenario(kind: ProtocolKind, adversary: AdversarySpec, charge: bool, seed: u64) -> Scenario {
    let (n, h) = kind.sweep_grid()[0];
    Scenario {
        label: format!("pred-{}-{seed}", kind.name()),
        kind,
        n,
        h,
        path: ExecutionPath::Concrete,
        adversary,
        seed,
        charge_adversary_bytes: charge,
        expectation: Expectation::Holds,
    }
}

/// Runs one scenario as a traced, stream-retaining single-session pool.
fn run_traced<B: ExecutionBackend>(scenario: &Scenario, backend: B) -> SessionReport {
    let mut pool = SessionPool::new(backend)
        .with_workers(1)
        .with_tracing(true)
        .with_trace_logs(true);
    registry::submit_scenario(&mut pool, scenario);
    let mut batch = pool.run().expect("scenario executes");
    batch.sessions.remove(0)
}

/// Full-set violations of one executed scenario.
fn violations(scenario: &Scenario, report: &SessionReport) -> Vec<SetViolation> {
    let log = report.trace_log.as_ref().expect("stream retained");
    let trace = TaggedTrace::new(log, scenario.kind);
    eval_set(&full_set(scenario.kind, None), &trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Honest executions of all six families pass the entire full predicate
    /// set — frame legality, temporal rules, flooding, consistency — at any
    /// seed, on both backends.
    #[test]
    fn honest_runs_satisfy_the_full_predicate_set(seed in any::<u64>(), parallel in any::<bool>()) {
        for kind in ProtocolKind::ALL {
            let scenario = scenario(kind, AdversarySpec::Honest, false, seed);
            let report = if parallel {
                run_traced(&scenario, Parallel::default())
            } else {
                run_traced(&scenario, Sequential)
            };
            let violated = violations(&scenario, &report);
            prop_assert!(
                violated.is_empty(),
                "honest {} run (seed {seed}) violated {:?}",
                kind.name(),
                violated.iter().map(|v| v.name).collect::<Vec<_>>(),
            );
        }
    }

    /// Benign (non-rigged) adversaries — silence, crashes, withheld frames,
    /// an uncharged triggered flood — never trip the predicate plane either:
    /// the predicates judge *detectable misbehaviour*, not mere corruption.
    #[test]
    fn benign_adversaries_stay_clean(seed in any::<u64>()) {
        let cases: Vec<(ProtocolKind, AdversarySpec)> = vec![
            (
                ProtocolKind::Theorem1Mpc,
                AdversarySpec::Silent { corrupt: CorruptionSpec::Explicit(vec![0]) },
            ),
            (
                ProtocolKind::Theorem2LocalMpc,
                AdversarySpec::AbortAt { corrupt: CorruptionSpec::Explicit(vec![0]), round: 3 },
            ),
            (
                ProtocolKind::Broadcast,
                AdversarySpec::Withhold {
                    corrupt: CorruptionSpec::Explicit(vec![0]),
                    recipients: vec![2],
                },
            ),
            (
                ProtocolKind::SuccinctAllToAll,
                AdversarySpec::Triggered {
                    base: Box::new(AdversarySpec::Flood {
                        corrupt: CorruptionSpec::Explicit(vec![0]),
                        victims: vec![],
                        junk_bytes: 512,
                        round_budget: Some(2),
                    }),
                    trigger: TriggerSpec::AtRound(1),
                },
            ),
        ];
        for (kind, adversary) in cases {
            let scenario = scenario(kind, adversary, false, seed);
            let report = run_traced(&scenario, Sequential);
            let violated = violations(&scenario, &report);
            prop_assert!(
                violated.is_empty(),
                "benign {} adversary (seed {seed}) violated {:?}",
                kind.name(),
                violated.iter().map(|v| v.name).collect::<Vec<_>>(),
            );
        }
    }
}

/// The equivocated unchecked sum — the campaign's standing agreement
/// control — violates exactly `broadcast-consistency`, nothing else, and
/// pins a span inside the event stream. Both backends agree on the span.
#[test]
fn equivocated_sum_violates_exactly_broadcast_consistency() {
    let scenario = scenario(
        ProtocolKind::UncheckedSum,
        AdversarySpec::Equivocate {
            corrupt: CorruptionSpec::Explicit(vec![0]),
            victims: vec![1],
        },
        false,
        11,
    );
    let report = run_traced(&scenario, Sequential);
    let violated = violations(&scenario, &report);
    assert_eq!(
        violated.iter().map(|v| v.name).collect::<Vec<_>>(),
        ["broadcast-consistency"],
        "exactly the intended predicate must fire: {violated:?}"
    );
    let events = report.trace.as_ref().unwrap().events as usize;
    let span = violated[0].violation.span;
    assert!(
        span.start <= span.end && span.end < events,
        "span {span:?} within {events} events"
    );

    let parallel = run_traced(&scenario, Parallel::default());
    let parallel_violated = violations(&scenario, &parallel);
    assert_eq!(
        parallel_violated[0].violation.span, span,
        "first-violation span is backend-independent"
    );
}

/// The charged flood — the campaign's standing flooding control — violates
/// exactly `flooding-never-charged`: junk bytes landed in the honest
/// parties' charged communication, which the stream-level predicate must
/// localise to the flooded rounds.
#[test]
fn charged_flood_violates_exactly_the_flooding_rule() {
    let scenario = scenario(
        ProtocolKind::SuccinctAllToAll,
        AdversarySpec::Flood {
            corrupt: CorruptionSpec::Explicit(vec![0]),
            victims: vec![],
            junk_bytes: 2048,
            round_budget: None,
        },
        true,
        11,
    );
    let report = run_traced(&scenario, Sequential);
    let violated = violations(&scenario, &report);
    assert_eq!(
        violated.iter().map(|v| v.name).collect::<Vec<_>>(),
        ["flooding-never-charged"],
        "exactly the intended predicate must fire: {violated:?}"
    );
    let events = report.trace.as_ref().unwrap().events as usize;
    let span = violated[0].violation.span;
    assert!(
        span.start <= span.end && span.end < events,
        "span {span:?} within {events} events"
    );

    // The identical uncharged flood is clean — the predicate reads the
    // charging mode out of the stream, not the adversary's shape.
    let mut uncharged = scenario.clone();
    uncharged.charge_adversary_bytes = false;
    let report = run_traced(&uncharged, Sequential);
    assert!(violations(&uncharged, &report).is_empty());
}
