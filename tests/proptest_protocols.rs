//! Property-based tests over the protocol stack: for random inputs, random
//! network sizes and random corruption sets, the paper's correctness-with-
//! abort guarantee must hold — no honest party ever outputs a wrong value.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::net::{CommonRandomString, PartyId, SilentAdversary, SimConfig, Simulator};
use mpc_aborts::protocols::{all_to_all, local_mpc, mpc, ExecutionPath, ProtocolParams};

fn sum_params(n: usize, h: usize) -> ProtocolParams {
    ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn committee_mpc_is_correct_for_random_inputs(
        n in 8usize..20,
        values in proptest::collection::vec(any::<u16>(), 20),
        seed in any::<u64>(),
    ) {
        let h = n / 2 + 1;
        let params = sum_params(n, h);
        let inputs: Vec<Vec<u8>> = values[..n].iter().map(|v| v.to_le_bytes().to_vec()).collect();
        let expected: u16 = values[..n].iter().fold(0u16, |a, v| a.wrapping_add(*v));
        let functionality = Functionality::Sum { input_bytes: 2 };
        let crs = CommonRandomString::from_label(&seed.to_le_bytes());
        let parties = mpc::mpc_parties(
            &params, &functionality, ExecutionPath::Concrete, &inputs, crs, None, &BTreeSet::new(),
        );
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        prop_assert!(result.correct_or_aborted(&expected.to_le_bytes().to_vec()));
    }

    #[test]
    fn committee_mpc_with_random_silent_corruption_never_outputs_wrong_values(
        n in 10usize..18,
        values in proptest::collection::vec(any::<u16>(), 18),
        corrupt_mask in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Vec<u8>> = values[..n].iter().map(|v| v.to_le_bytes().to_vec()).collect();
        // Corrupt at most n/3 parties so h = ceil(2n/3) is a valid bound.
        let corrupted: BTreeSet<PartyId> = (0..n)
            .filter(|i| (corrupt_mask >> (i % 32)) & 1 == 1)
            .take(n / 3)
            .map(PartyId)
            .collect();
        let h = n - corrupted.len();
        let params = sum_params(n, h.max(1));
        let functionality = Functionality::Sum { input_bytes: 2 };
        let honest_total: u16 = inputs
            .iter()
            .enumerate()
            .filter(|(i, _)| !corrupted.contains(&PartyId(*i)))
            .fold(0u16, |a, (_, v)| a.wrapping_add(u16::from_le_bytes([v[0], v[1]])));
        let crs = CommonRandomString::from_label(&seed.to_le_bytes());
        let parties = mpc::mpc_parties(
            &params, &functionality, ExecutionPath::Concrete, &inputs, crs, None, &corrupted,
        );
        let result = Simulator::new(
            params.n,
            parties,
            Box::new(SilentAdversary::new(corrupted)),
            SimConfig::default(),
        )
        .unwrap()
        .run()
        .unwrap();
        prop_assert!(result.correct_or_aborted(&honest_total.to_le_bytes().to_vec()));
    }

    #[test]
    fn sparse_gossip_mpc_is_correct_for_random_inputs(
        n in 12usize..24,
        values in proptest::collection::vec(any::<u8>(), 24),
        seed in any::<u64>(),
    ) {
        let h = n * 3 / 4;
        let params = ProtocolParams::new(n, h.max(2));
        let functionality = Functionality::Xor { input_bytes: 1 };
        let inputs: Vec<Vec<u8>> = values[..n].iter().map(|v| vec![*v]).collect();
        let expected = functionality.evaluate(&inputs);
        let crs = CommonRandomString::from_label(&seed.to_le_bytes());
        let parties = local_mpc::local_mpc_parties(&params, &functionality, &inputs, crs, &BTreeSet::new());
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        prop_assert!(result.correct_or_aborted(&expected));
    }

    #[test]
    fn succinct_all_to_all_views_agree(
        n in 4usize..12,
        lens in proptest::collection::vec(1usize..32, 12),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; lens[i]]).collect();
        let parties = all_to_all::succinct_parties(&inputs, 20, &seed.to_le_bytes(), &BTreeSet::new());
        let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
        let view = result.unanimous_output();
        prop_assert!(view.is_some());
        let view = view.unwrap();
        prop_assert_eq!(view.len(), n);
        for (i, input) in inputs.iter().enumerate() {
            prop_assert_eq!(view.get(&PartyId(i)), Some(input));
        }
    }
}
