//! Hot-path refactor safety net: the batched fan-out accounting, the
//! index-addressed inbox plane and the committee-draw memoization must be
//! **byte-identical** to the naive per-envelope implementation.
//!
//! Two layers of evidence:
//!
//! * a golden digest vector (`tests/golden/hotpath_digests.json`), blessed
//!   from the pre-refactor implementation, that pins the canonical trace
//!   digest, CommStats totals and phase attribution of one honest traced
//!   session per protocol family at asymptotic-regime sizes;
//! * property tests comparing the batched send path against the naive
//!   reference path (`mpca_net::set_naive_fanout_for_tests`) at arbitrary
//!   seeds for every family — the full `SessionReport` (outcomes, abort
//!   reasons, CommStats, phase attribution, inbox high-water marks and the
//!   `TraceSummary` digest) must match exactly.
//!
//! Regenerate the golden vector after an *intentional* protocol change with:
//!
//! ```sh
//! MPCA_BLESS=1 cargo test --test proptest_hotpaths golden
//! ```

use std::sync::Mutex;

use proptest::prelude::*;

use mpc_aborts::engine::{Sequential, SessionPool, SessionReport};
use mpc_aborts::net::set_naive_fanout_for_tests;
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{registry, AdversarySpec, CorruptionSpec, ScenarioPlan};

const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/hotpath_digests.json"
);

/// The pinned grid: one `(n, h)` point per family, sized into the
/// asymptotic regime (n = 256) where a debug-mode run stays affordable.
/// The heavyweight gossip families (Õ(n³/h) traffic) are pinned at the
/// largest size a `cargo test` run can carry; E19 measures them further out.
fn digest_grid() -> Vec<(ProtocolKind, usize, usize)> {
    vec![
        (ProtocolKind::Theorem1Mpc, 256, 128),
        (ProtocolKind::Theorem2LocalMpc, 96, 48),
        (ProtocolKind::Theorem4Tradeoff, 96, 48),
        (ProtocolKind::Broadcast, 256, 254),
        (ProtocolKind::SuccinctAllToAll, 256, 254),
        (ProtocolKind::UncheckedSum, 256, 254),
    ]
}

const DIGEST_SEED: u64 = 7;

/// Runs one honest traced session of `kind` at `(n, h)` and returns its
/// report.
fn run_family(kind: ProtocolKind, n: usize, h: usize, seed: u64) -> SessionReport {
    run_scenario(kind, n, h, seed, AdversarySpec::Honest)
}

/// Runs one traced session of `kind` under `spec` and returns its report.
fn run_scenario(
    kind: ProtocolKind,
    n: usize,
    h: usize,
    seed: u64,
    spec: AdversarySpec,
) -> SessionReport {
    let plan = ScenarioPlan::new(format!("hotpath-{}", kind.name()), kind, spec)
        .with_grid([(n, h)])
        .with_seed(seed);
    let scenario = plan.scenarios().remove(0);
    let mut pool = SessionPool::new(Sequential)
        .with_workers(1)
        .with_tracing(true);
    registry::submit_scenario(&mut pool, &scenario);
    let batch = pool.run().expect("honest session runs");
    batch.sessions.into_iter().next().expect("one session")
}

fn render_fixture(rows: &[(ProtocolKind, usize, usize, SessionReport)]) -> String {
    let lines: Vec<String> = rows
        .iter()
        .map(|(kind, n, h, report)| {
            let trace = report.trace.as_ref().expect("traced session");
            format!(
                "    {{\"protocol\":\"{}\",\"n\":{},\"h\":{},\"seed\":{},\"digest\":\"{}\",\
                 \"events\":{},\"total_bytes\":{},\"rounds\":{},\"peak_inbox_bytes\":{}}}",
                kind.name(),
                n,
                h,
                DIGEST_SEED,
                trace.digest,
                trace.events,
                report.stats.total_bytes(),
                report.rounds,
                report.peak_inbox_bytes,
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"mpc-aborts/hotpath-digests/v1\",\n  \"points\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    )
}

/// The golden digest vector: byte-identity of the optimised hot paths with
/// the pre-refactor implementation, pinned per family. A drift in any
/// charged byte, trace event, phase attribution or delivery order changes
/// the canonical digest and fails this test.
#[test]
fn golden_hotpath_digest_vector_is_stable() {
    let rows: Vec<(ProtocolKind, usize, usize, SessionReport)> = digest_grid()
        .into_iter()
        .map(|(kind, n, h)| {
            let report = run_family(kind, n, h, DIGEST_SEED);
            assert!(!report.any_abort(), "{}: honest run aborted", kind.name());
            // Conservation: live phase accounting reconciles with the
            // trace-derived ledger inside the summary.
            let trace = report.trace.as_ref().expect("traced session");
            assert_eq!(trace.phase_bytes, report.phase_bytes);
            assert_eq!(report.phase_bytes.total(), report.stats.total_bytes());
            (kind, n, h, report)
        })
        .collect();
    let rendered = render_fixture(&rows);

    if std::env::var_os("MPCA_BLESS").is_some() {
        std::fs::write(FIXTURE_PATH, &rendered).expect("write golden fixture");
        eprintln!("blessed {FIXTURE_PATH}");
        return;
    }

    let golden = std::fs::read_to_string(FIXTURE_PATH).expect("golden fixture is checked in");
    assert_eq!(
        rendered, golden,
        "hot-path digests diverged from the pre-refactor golden vector; the \
         optimisation is supposed to be behaviour-preserving — regenerate \
         with MPCA_BLESS=1 only for an intentional protocol change"
    );
}

/// Wall-clock probe for sizing the digest grid and the E19 speedup table;
/// ignored by default (`cargo test --release -- --ignored hotpath_walls`).
#[test]
#[ignore = "timing probe, not a correctness test"]
fn hotpath_walls() {
    for (kind, n, h) in digest_grid() {
        let start = std::time::Instant::now();
        let report = run_family(kind, n, h, DIGEST_SEED);
        eprintln!(
            "{:<16} n={:<4} h={:<4} wall={:>8.1?} bytes={} rounds={}",
            kind.name(),
            n,
            h,
            start.elapsed(),
            report.stats.total_bytes(),
            report.rounds
        );
    }
    for n in [128usize, 256] {
        let start = std::time::Instant::now();
        let _ = run_family(ProtocolKind::SuccinctAllToAll, n, n - 2, DIGEST_SEED);
        eprintln!("all-to-all       n={n:<4} wall={:>8.1?}", start.elapsed());
    }
}

/// The fan-out knob is process-global, so naive/batched comparisons must not
/// interleave across test threads.
static FANOUT_KNOB: Mutex<()> = Mutex::new(());

/// Runs the same scenario through the naive per-envelope send path and the
/// batched fan-out path and returns both reports for comparison.
fn run_both_fanout_paths(
    kind: ProtocolKind,
    n: usize,
    h: usize,
    seed: u64,
    spec: AdversarySpec,
) -> (SessionReport, SessionReport) {
    let _guard = FANOUT_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    set_naive_fanout_for_tests(true);
    let naive = run_scenario(kind, n, h, seed, spec.clone());
    set_naive_fanout_for_tests(false);
    let batched = run_scenario(kind, n, h, seed, spec);
    (naive, batched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Batched fan-out must be byte-identical to the naive per-envelope
    /// path for every protocol family at arbitrary seeds: same outcomes,
    /// same CommStats, same phase attribution, same inbox high-water marks,
    /// same canonical trace digest.
    #[test]
    fn batched_fanout_matches_naive_path_for_all_families(
        seed in any::<u64>(),
        n in 8usize..20,
    ) {
        for kind in ProtocolKind::ALL {
            // The gossip-backed families need a committee-sized honest
            // majority; the flat families tolerate h close to n.
            let h = match kind {
                ProtocolKind::Theorem1Mpc
                | ProtocolKind::Theorem2LocalMpc
                | ProtocolKind::Theorem4Tradeoff => n / 2 + 1,
                _ => n - 1,
            };
            let (naive, batched) =
                run_both_fanout_paths(kind, n, h, seed, AdversarySpec::Honest);
            prop_assert_eq!(&naive, &batched);
        }
    }

    /// The equivalence must also hold under an adversary: corrupted parties
    /// route through the proxy/injection path, whose charging and trace
    /// events share the hoisted per-round phase lookups with honest sends.
    #[test]
    fn batched_fanout_matches_naive_path_under_adversaries(
        seed in any::<u64>(),
        n in 8usize..16,
        junk in 1usize..256,
    ) {
        let silent = AdversarySpec::Silent {
            corrupt: CorruptionSpec::Seeded { count: 2 },
        };
        let flood = AdversarySpec::Flood {
            corrupt: CorruptionSpec::Explicit(vec![1]),
            victims: vec![],
            junk_bytes: junk,
            round_budget: Some(3),
        };
        for (kind, spec) in [
            (ProtocolKind::Broadcast, silent.clone()),
            (ProtocolKind::SuccinctAllToAll, flood),
            (ProtocolKind::UncheckedSum, silent),
        ] {
            let (naive, batched) = run_both_fanout_paths(kind, n, n - 2, seed, spec);
            prop_assert_eq!(&naive, &batched);
        }
    }
}
