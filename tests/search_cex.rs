//! Integration tests for the coverage-guided adversary search and its
//! counterexample artefacts:
//!
//! * **determinism** — the same seed yields the same candidate stream,
//!   coverage signatures and counterexample bytes, on either backend;
//! * **the rigged health check** — `Rig::LoosenFlooding` plants a
//!   violation the searcher must find and shrink;
//! * **golden counterexamples** — every `.cex` file checked in under
//!   `tests/counterexamples/` replays bit-for-bit (digest, event count,
//!   violated set, first span) on both backends, forever.

use mpc_aborts::engine::{Parallel, Sequential};
use mpc_aborts::scenario::{run_search, Counterexample, Rig, SearchConfig};

fn tiny_config(seed: u64) -> SearchConfig {
    SearchConfig {
        budget: 16,
        batch: 8,
        ..SearchConfig::tiny(seed)
    }
}

#[test]
fn search_is_deterministic_across_backends() {
    let config = tiny_config(5);
    let sequential = run_search(&config, Sequential).expect("search executes");
    let parallel = run_search(&config, Parallel::default()).expect("search executes");
    assert_eq!(sequential.executed, parallel.executed);
    assert_eq!(sequential.coverage, parallel.coverage);
    assert_eq!(
        sequential.counterexamples, parallel.counterexamples,
        "same seed, same counterexamples, whatever the backend"
    );
    assert!(
        sequential.findings.is_empty(),
        "an unrigged search over the standing templates finds nothing"
    );

    // Re-running the same configuration reproduces the run exactly.
    let again = run_search(&config, Sequential).expect("search executes");
    assert_eq!(again.coverage, sequential.coverage);
    assert_eq!(again.executed, sequential.executed);
}

#[test]
fn rigged_search_finds_shrinks_and_round_trips_a_counterexample() {
    let config = tiny_config(5).with_rig(Rig::LoosenFlooding);
    let report = run_search(&config, Sequential).expect("search executes");
    assert!(
        !report.counterexamples.is_empty(),
        "the rig plants a charged flood: {}",
        report.summary()
    );
    let cex = &report.counterexamples[0];
    assert!(cex.violated.iter().any(|v| v == "flooding-never-charged"));
    assert_eq!(cex.rig.as_deref(), Some("loosen-flooding"));

    // The artefact round-trips through its file format and the parsed copy
    // replays clean on both backends.
    let parsed = Counterexample::parse(&cex.render()).expect("parses");
    assert_eq!(&parsed, cex);
    assert_eq!(parsed.replay(Sequential).expect("replays"), vec![]);
    assert_eq!(parsed.replay(Parallel::default()).expect("replays"), vec![]);
}

#[test]
fn checked_in_counterexamples_replay_on_both_backends() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/counterexamples");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/counterexamples exists")
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "cex"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "at least one golden counterexample is checked in"
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable");
        let cex = Counterexample::parse(&text)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        for (backend, mismatches) in [
            ("sequential", cex.replay(Sequential).expect("replays")),
            (
                "parallel",
                cex.replay(Parallel::default()).expect("replays"),
            ),
        ] {
            assert!(
                mismatches.is_empty(),
                "{} diverged on {backend}: {}",
                path.display(),
                mismatches
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
    }
}
