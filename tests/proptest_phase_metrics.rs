//! Property tests for the metrics plane's conservation law: every byte the
//! simulator charges to `CommStats` lands in **exactly one** protocol phase
//! (the per-phase sums equal the aggregate totals), the trace-derived
//! `PhaseLedger` reconciles byte-for-byte with the live accounting, and the
//! whole attribution is backend-independent — across every protocol family
//! and both execution backends.

use proptest::prelude::*;

use mpc_aborts::engine::{Parallel, Sequential};
use mpc_aborts::protocols::ProtocolKind;
use mpc_aborts::scenario::{AdversarySpec, Campaign, CampaignReport, CorruptionSpec, ScenarioPlan};

/// A single-plan campaign running one honest session of `kind`.
fn family_campaign(kind: ProtocolKind, n: usize, seed: u64) -> Campaign {
    Campaign::new("phase-prop").plan(
        ScenarioPlan::new("fam", kind, AdversarySpec::Honest)
            .with_grid([(n, n)])
            .with_seed(seed),
    )
}

/// Conservation + ledger reconciliation for every session of a traced
/// campaign report.
fn assert_conserved(report: &CampaignReport) -> Result<(), proptest::test_runner::TestCaseError> {
    for outcome in &report.outcomes {
        // Every charged byte lands in exactly one phase: the six per-phase
        // counters sum to the aggregate CommStats total.
        prop_assert_eq!(
            outcome.report.phase_bytes.total(),
            outcome.report.stats.total_bytes()
        );
        // The offline ledger (a replay of the recorded trace) reconciles
        // byte-for-byte with the live phase accounting.
        let summary = outcome.report.trace.as_ref().expect("traced run");
        prop_assert_eq!(summary.phase_bytes, outcome.report.phase_bytes);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Honest executions of every protocol family, both backends: bytes are
    /// conserved per phase, the ledger reconciles, and the attribution is
    /// identical across backends and worker counts.
    #[test]
    fn phase_bytes_conserved_for_every_family(
        kind_idx in 0usize..6,
        n in 8usize..12,
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        let kind = ProtocolKind::ALL[kind_idx];
        let campaign = family_campaign(kind, n, seed);
        let sequential = campaign
            .run_traced(Sequential, workers)
            .expect("sequential campaign");
        let parallel = campaign
            .run_traced(Parallel::default(), workers)
            .expect("parallel campaign");
        assert_conserved(&sequential)?;
        assert_conserved(&parallel)?;
        for (a, b) in sequential.outcomes.iter().zip(parallel.outcomes.iter()) {
            prop_assert_eq!(a.report.phase_bytes, b.report.phase_bytes);
        }
    }

    /// Adversarial executions too: a flooding adversary (with and without
    /// the adversary-byte charging control) must not break conservation —
    /// injected bytes either land in a phase (charged) or stay out of both
    /// the stats and the phase counters (uncharged).
    #[test]
    fn phase_bytes_conserved_under_flooding(
        n in 8usize..11,
        junk in 64usize..512,
        seed in any::<u64>(),
        charge in any::<bool>(),
    ) {
        let mut plan = ScenarioPlan::new(
            "flood",
            ProtocolKind::UncheckedSum,
            AdversarySpec::Flood {
                corrupt: CorruptionSpec::Seeded { count: 1 },
                victims: vec![],
                junk_bytes: junk,
                round_budget: None,
            },
        )
        .with_grid([(n, n - 1)])
        .with_seed(seed);
        if charge {
            plan = plan.charging_adversary_bytes();
        }
        let campaign = Campaign::new("phase-flood").plan(plan);
        let report = campaign
            .run_traced(Sequential, 1)
            .expect("flood campaign");
        assert_conserved(&report)?;
    }
}
