//! The engine acceptance test: a ≥20-session mixed-protocol batch on the
//! `SessionPool` with the `Parallel` backend must produce per-session
//! outcomes and `CommStats` byte-identical to sequential single-session
//! runs.

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::crypto::Prg;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::engine::{ExecutionBackend, Parallel, Sequential, SessionPool, SessionReport};
use mpc_aborts::net::{CommonRandomString, PartyId, Simulator};
use mpc_aborts::protocols::{
    all_to_all, broadcast, equality, local_mpc, mpc, tradeoff, ExecutionPath, ProtocolParams,
};

fn sum_params(n: usize, h: usize) -> ProtocolParams {
    ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    })
}

fn sum_inputs(n: usize) -> Vec<Vec<u8>> {
    (0..n as u16)
        .map(|i| (i * 31 + 5).to_le_bytes().to_vec())
        .collect()
}

/// Submits the full mixed-protocol fleet (≥ 20 sessions, five different
/// protocols, varied `(n, h)`) to `pool`. Every submission is deterministic,
/// so two pools loaded by this function describe identical work.
fn submit_fleet<B: ExecutionBackend>(pool: &mut SessionPool<B>) {
    // Theorems 1, 2 and 4 across an (n, h) grid: 9 sessions.
    for (n, h) in [(12usize, 6usize), (16, 8), (20, 10)] {
        let (params, inputs) = (sum_params(n, h), sum_inputs(n));
        let functionality = Functionality::Sum { input_bytes: 2 };

        let (p, f, i) = (params, functionality.clone(), inputs.clone());
        pool.submit(format!("thm1-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-1-{n}-{h}").as_bytes());
            let parties = mpc::mpc_parties(
                &p,
                &f,
                ExecutionPath::Concrete,
                &i,
                crs,
                None,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });

        let (p, f, i) = (params, functionality.clone(), inputs.clone());
        pool.submit(format!("thm2-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-2-{n}-{h}").as_bytes());
            Simulator::all_honest(
                n,
                local_mpc::local_mpc_parties(&p, &f, &i, crs, &BTreeSet::new()),
            )
        });

        pool.submit(format!("thm4-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-4-{n}-{h}").as_bytes());
            let parties = tradeoff::tradeoff_parties(
                &params,
                &functionality,
                ExecutionPath::Concrete,
                &inputs,
                crs,
                None,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });
    }

    // Single-source broadcast: 4 sessions.
    for n in [8usize, 12, 16, 24] {
        pool.submit(format!("broadcast-n{n}"), move || {
            let message = vec![n as u8; 48];
            let parties = broadcast::broadcast_parties(n, PartyId(1), message, &BTreeSet::new());
            Simulator::all_honest(n, parties)
        });
    }

    // Two-party equality tests over growing strings: 4 sessions.
    for len in [64usize, 256, 1024, 4096] {
        pool.submit(format!("equality-{len}"), move || {
            let prg = Prg::from_seed_bytes(format!("batch-eq-{len}").as_bytes());
            let data = vec![0x5Au8; len];
            let parties = vec![
                equality::EqualityParty::new(
                    PartyId(0),
                    PartyId(1),
                    24,
                    data.clone(),
                    prg.derive(b"p0"),
                ),
                equality::EqualityParty::new(PartyId(1), PartyId(0), 24, data, prg.derive(b"p1")),
            ];
            Simulator::all_honest(2, parties)
        });
    }

    // Succinct all-to-all broadcast: 4 sessions.
    for n in [6usize, 8, 10, 12] {
        pool.submit(format!("all-to-all-n{n}"), move || {
            let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
            let parties = all_to_all::succinct_parties(
                &inputs,
                20,
                format!("batch-a2a-{n}").as_bytes(),
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });
    }
}

#[test]
fn parallel_pool_matches_sequential_single_session_runs() {
    let mut pooled = SessionPool::new(Parallel::with_threads(4)).with_workers(8);
    submit_fleet(&mut pooled);
    assert!(
        pooled.len() >= 20,
        "acceptance requires a ≥20-session batch"
    );

    // The reference: the same fleet as sequential single-session runs (one
    // worker, sequential backend — exactly the historical execution mode).
    let mut reference = SessionPool::new(Sequential).with_workers(1);
    submit_fleet(&mut reference);

    let pooled = pooled.run().expect("parallel batch");
    let reference = reference.run().expect("sequential reference");

    assert_eq!(pooled.sessions.len(), reference.sessions.len());
    for (parallel, sequential) in pooled.sessions.iter().zip(&reference.sessions) {
        // SessionReport equality covers label, every party's outcome digest,
        // the full CommStats (bytes, messages, per-peer contact sets,
        // rounds) and the round count — wall-clock is excluded.
        assert_eq!(parallel, sequential, "session {}", parallel.label);
    }

    // No honest party aborts anywhere in an all-honest fleet.
    assert!(pooled.sessions.iter().all(|s| !s.any_abort()));
}

#[test]
fn pooled_session_matches_direct_simulator_run() {
    // Spot-check against the plain `Simulator::run` path (no engine at all):
    // the pool must not change what a session computes.
    let n = 16;
    let (params, inputs) = (sum_params(n, 8), sum_inputs(n));
    let functionality = Functionality::Sum { input_bytes: 2 };
    let build = |label: &str| {
        let crs = CommonRandomString::from_label(label.as_bytes());
        let parties = mpc::mpc_parties(
            &params,
            &functionality,
            ExecutionPath::Concrete,
            &inputs,
            crs,
            None,
            &BTreeSet::new(),
        );
        Simulator::all_honest(n, parties).unwrap()
    };

    let direct = build("spot").run().unwrap();

    let mut pool = SessionPool::new(Parallel::with_threads(3)).with_workers(2);
    let (p, f, i) = (params, functionality.clone(), inputs.clone());
    pool.submit("spot", move || {
        let crs = CommonRandomString::from_label(b"spot");
        let parties = mpc::mpc_parties(
            &p,
            &f,
            ExecutionPath::Concrete,
            &i,
            crs,
            None,
            &BTreeSet::new(),
        );
        Simulator::all_honest(n, parties)
    });
    let batch = pool.run().unwrap();

    let expected = SessionReport::from_result("spot", &direct, std::time::Duration::ZERO);
    assert_eq!(batch.sessions[0], expected);
    assert_eq!(batch.session("spot").unwrap().rounds, direct.rounds);
    assert_eq!(batch.total_bytes(), direct.stats.total_bytes());
}
