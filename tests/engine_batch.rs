//! The engine acceptance test: a ≥20-session mixed-protocol batch on the
//! `SessionPool` with the `Parallel` backend must produce per-session
//! outcomes and `CommStats` byte-identical to sequential single-session
//! runs.

use std::collections::BTreeSet;

use mpc_aborts::crypto::lwe::LweParams;
use mpc_aborts::crypto::Prg;
use mpc_aborts::encfunc::Functionality;
use mpc_aborts::engine::{ExecutionBackend, Parallel, Sequential, SessionPool, SessionReport};
use mpc_aborts::net::{CommonRandomString, PartyId, Simulator};
use mpc_aborts::protocols::{
    all_to_all, broadcast, equality, local_mpc, mpc, tradeoff, ExecutionPath, ProtocolParams,
};

fn sum_params(n: usize, h: usize) -> ProtocolParams {
    ProtocolParams::new(n, h).with_lwe(LweParams {
        plaintext_modulus: 1 << 16,
        ..LweParams::toy()
    })
}

fn sum_inputs(n: usize) -> Vec<Vec<u8>> {
    (0..n as u16)
        .map(|i| (i * 31 + 5).to_le_bytes().to_vec())
        .collect()
}

/// Submits the full mixed-protocol fleet (≥ 20 sessions, five different
/// protocols, varied `(n, h)`) to `pool`. Every submission is deterministic,
/// so two pools loaded by this function describe identical work.
fn submit_fleet<B: ExecutionBackend>(pool: &mut SessionPool<B>) {
    // Theorems 1, 2 and 4 across an (n, h) grid: 9 sessions.
    for (n, h) in [(12usize, 6usize), (16, 8), (20, 10)] {
        let (params, inputs) = (sum_params(n, h), sum_inputs(n));
        let functionality = Functionality::Sum { input_bytes: 2 };

        let (p, f, i) = (params, functionality.clone(), inputs.clone());
        pool.submit(format!("thm1-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-1-{n}-{h}").as_bytes());
            let parties = mpc::mpc_parties(
                &p,
                &f,
                ExecutionPath::Concrete,
                &i,
                crs,
                None,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });

        let (p, f, i) = (params, functionality.clone(), inputs.clone());
        pool.submit(format!("thm2-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-2-{n}-{h}").as_bytes());
            Simulator::all_honest(
                n,
                local_mpc::local_mpc_parties(&p, &f, &i, crs, &BTreeSet::new()),
            )
        });

        pool.submit(format!("thm4-n{n}-h{h}"), move || {
            let crs = CommonRandomString::from_label(format!("batch-4-{n}-{h}").as_bytes());
            let parties = tradeoff::tradeoff_parties(
                &params,
                &functionality,
                ExecutionPath::Concrete,
                &inputs,
                crs,
                None,
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });
    }

    // Single-source broadcast: 4 sessions.
    for n in [8usize, 12, 16, 24] {
        pool.submit(format!("broadcast-n{n}"), move || {
            let message = vec![n as u8; 48];
            let parties = broadcast::broadcast_parties(n, PartyId(1), message, &BTreeSet::new());
            Simulator::all_honest(n, parties)
        });
    }

    // Two-party equality tests over growing strings: 4 sessions.
    for len in [64usize, 256, 1024, 4096] {
        pool.submit(format!("equality-{len}"), move || {
            let prg = Prg::from_seed_bytes(format!("batch-eq-{len}").as_bytes());
            let data = vec![0x5Au8; len];
            let parties = vec![
                equality::EqualityParty::new(
                    PartyId(0),
                    PartyId(1),
                    24,
                    data.clone(),
                    prg.derive(b"p0"),
                ),
                equality::EqualityParty::new(PartyId(1), PartyId(0), 24, data, prg.derive(b"p1")),
            ];
            Simulator::all_honest(2, parties)
        });
    }

    // Succinct all-to-all broadcast: 4 sessions.
    for n in [6usize, 8, 10, 12] {
        pool.submit(format!("all-to-all-n{n}"), move || {
            let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 32]).collect();
            let parties = all_to_all::succinct_parties(
                &inputs,
                20,
                format!("batch-a2a-{n}").as_bytes(),
                &BTreeSet::new(),
            );
            Simulator::all_honest(n, parties)
        });
    }
}

#[test]
fn parallel_pool_matches_sequential_single_session_runs() {
    let mut pooled = SessionPool::new(Parallel::with_threads(4)).with_workers(8);
    submit_fleet(&mut pooled);
    assert!(
        pooled.len() >= 20,
        "acceptance requires a ≥20-session batch"
    );

    // The reference: the same fleet as sequential single-session runs (one
    // worker, sequential backend — exactly the historical execution mode).
    let mut reference = SessionPool::new(Sequential).with_workers(1);
    submit_fleet(&mut reference);

    let pooled = pooled.run().expect("parallel batch");
    let reference = reference.run().expect("sequential reference");

    assert_eq!(pooled.sessions.len(), reference.sessions.len());
    for (parallel, sequential) in pooled.sessions.iter().zip(&reference.sessions) {
        // SessionReport equality covers label, every party's outcome digest,
        // the full CommStats (bytes, messages, per-peer contact sets,
        // rounds) and the round count — wall-clock is excluded.
        assert_eq!(parallel, sequential, "session {}", parallel.label);
    }

    // No honest party aborts anywhere in an all-honest fleet.
    assert!(pooled.sessions.iter().all(|s| !s.any_abort()));
}

/// Renders the `CommStats` digest compared against the checked-in golden
/// vector: every quantity the paper's communication measure is built from,
/// in a stable JSON shape. Regenerate with `MPCA_BLESS=1 cargo test`.
fn commstats_digest_json(
    n: usize,
    h: usize,
    result: &mpc_aborts::net::RunResult<Vec<u8>>,
) -> String {
    let per_party: Vec<String> = PartyId::all(n)
        .map(|id| {
            format!(
                "{{\"party\":{},\"bytes\":{},\"peers\":{}}}",
                id.index(),
                result.stats.bytes_sent_by_party(id),
                result.stats.peers_of(id).len()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"mpc-aborts/commstats-golden/v1\",\n  \"protocol\": \"mpc::MpcParty\",\n  \"n\": {n},\n  \"h\": {h},\n  \"crs_label\": \"golden-mpc-n16-h4\",\n  \"rounds\": {},\n  \"total_bytes\": {},\n  \"total_messages\": {},\n  \"honest_bits\": {},\n  \"max_locality\": {},\n  \"per_party\": [\n    {}\n  ]\n}}\n",
        result.rounds,
        result.stats.total_bytes(),
        result.stats.total_messages(),
        result.honest_bits(),
        result.honest_locality(),
        per_party.join(",\n    ")
    )
}

/// The golden-vector acceptance test for the zero-copy message plane: the
/// `CommStats` of an `MpcParty` execution at `n = 16, h = 4` must match a
/// digest recorded **before** the `Payload` refactor, byte for byte. Charged
/// communication is a paper-level quantity; swapping the transport's buffer
/// representation must not move it.
#[test]
fn mpc_commstats_matches_pre_refactor_golden_vector() {
    let (n, h) = (16usize, 4usize);
    let (params, inputs) = (sum_params(n, h), sum_inputs(n));
    let functionality = Functionality::Sum { input_bytes: 2 };
    let crs = CommonRandomString::from_label(b"golden-mpc-n16-h4");
    let parties = mpc::mpc_parties(
        &params,
        &functionality,
        ExecutionPath::Concrete,
        &inputs,
        crs,
        None,
        &BTreeSet::new(),
    );
    let result = Simulator::all_honest(n, parties).unwrap().run().unwrap();
    let digest = commstats_digest_json(n, h, &result);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/commstats_mpc_n16_h4.json"
    );
    if std::env::var_os("MPCA_BLESS").is_some() {
        std::fs::write(path, &digest).expect("write golden vector");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden vector is checked in");
    assert_eq!(
        digest, golden,
        "CommStats diverged from the pre-refactor golden vector"
    );
}

#[test]
fn pooled_session_matches_direct_simulator_run() {
    // Spot-check against the plain `Simulator::run` path (no engine at all):
    // the pool must not change what a session computes.
    let n = 16;
    let (params, inputs) = (sum_params(n, 8), sum_inputs(n));
    let functionality = Functionality::Sum { input_bytes: 2 };
    let build = |label: &str| {
        let crs = CommonRandomString::from_label(label.as_bytes());
        let parties = mpc::mpc_parties(
            &params,
            &functionality,
            ExecutionPath::Concrete,
            &inputs,
            crs,
            None,
            &BTreeSet::new(),
        );
        Simulator::all_honest(n, parties).unwrap()
    };

    let direct = build("spot").run().unwrap();

    let mut pool = SessionPool::new(Parallel::with_threads(3)).with_workers(2);
    let (p, f, i) = (params, functionality.clone(), inputs.clone());
    pool.submit("spot", move || {
        let crs = CommonRandomString::from_label(b"spot");
        let parties = mpc::mpc_parties(
            &p,
            &f,
            ExecutionPath::Concrete,
            &i,
            crs,
            None,
            &BTreeSet::new(),
        );
        Simulator::all_honest(n, parties)
    });
    let batch = pool.run().unwrap();

    let expected = SessionReport::from_result("spot", &direct, std::time::Duration::ZERO);
    assert_eq!(batch.sessions[0], expected);
    assert_eq!(batch.session("spot").unwrap().rounds, direct.rounds);
    assert_eq!(batch.total_bytes(), direct.stats.total_bytes());
}
